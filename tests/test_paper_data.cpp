// The bundled paper document (bench/data_paper.hpp): DTD validity and the
// Table-1 invariants the reproduction relies on.
#include <gtest/gtest.h>

#include "data_paper.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "xml/dtd.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace xml = mobiweb::xml;
namespace dtd = mobiweb::xml::dtd;

namespace {

doc::StructuralCharacteristic paper_sc() {
  doc::ScGenerator gen;
  return gen.generate(xml::parse(mobiweb::bench::kPaperXml));
}

}  // namespace

TEST(PaperData, ValidAgainstResearchPaperDtd) {
  const xml::Document parsed =
      xml::parse(mobiweb::bench::kPaperXml, {.strip_whitespace_text = true});
  const auto diags = dtd::validate(parsed, dtd::research_paper_dtd());
  for (const auto& d : diags) {
    ADD_FAILURE() << d.path << ": " << d.message;
  }
  EXPECT_TRUE(diags.empty());
}

TEST(PaperData, StructureMatchesThePaper) {
  const auto sc = paper_sc();
  // Abstract (= section 0) + 6 numbered sections.
  ASSERT_EQ(sc.root().children.size(), 7u);
  // The abstract holds one virtual subsection holding one paragraph — the
  // paper's rows 0 / 0.0 / 0.0.0.
  const auto& abstract = sc.root().children[0];
  ASSERT_EQ(abstract.children.size(), 1u);
  EXPECT_TRUE(abstract.children[0].virtual_unit);
  ASSERT_EQ(abstract.children[0].children.size(), 1u);
  // Section 3 (multi-resolution) has a virtual subsection (stray paragraphs)
  // followed by real subsections — the paper's 3.0 / 3.1 / ... labelling.
  const auto& sec3 = sc.root().children[3];
  EXPECT_TRUE(sec3.children[0].virtual_unit);
  EXPECT_GE(sec3.children.size(), 4u);
  EXPECT_FALSE(sec3.children[1].virtual_unit);
}

TEST(PaperData, Table1Invariants) {
  const auto sc = paper_sc();
  doc::ScGenerator gen;
  const auto query = doc::Query::from_text("browsing mobile web", gen.extractor());
  const doc::ContentScorer scorer(sc, query);
  ASSERT_TRUE(scorer.query_matches());

  // The query words all occur: root QIC normalizes to 1; sections sum to less
  // (the root title carries query words too).
  EXPECT_NEAR(scorer.qic(sc.root()), 1.0, 1e-9);

  int zero_qic_units = 0;
  int units = 0;
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>& p) {
    if (p.empty()) return;
    ++units;
    if (scorer.qic(u) == 0.0) {
      ++zero_qic_units;
      // MQIC keeps such units alive (Table 1's 3.2 row behaviour).
      if (u.info_content > 0) {
        EXPECT_GT(scorer.mqic(u), 0.0);
      }
    }
  });
  // The fault-tolerance/encoding material rarely says "browsing mobile web":
  // a meaningful share of units must have zero QIC, as in Table 1.
  EXPECT_GT(zero_qic_units, units / 8);
  EXPECT_LT(zero_qic_units, units);
}

TEST(PaperData, IntroductionOutranksRelatedWorkForTheQuery) {
  const auto sc = paper_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("browsing mobile web", gen.extractor()));
  const auto& intro = sc.root().children[1];         // Introduction
  const auto& fault_tolerance = sc.root().children[4];  // FT transmission
  // The introduction is where the paper talks about browsing the mobile web.
  EXPECT_GT(scorer.qic(intro), scorer.qic(fault_tolerance));
  // Static IC tells a different story (the FT section is big and keyword-rich).
  EXPECT_GT(fault_tolerance.info_content, intro.info_content * 0.8);
}

TEST(PaperData, TransmissionAtParagraphLodCoversWholePaper) {
  const auto sc = paper_sc();
  const auto lin = doc::linearize(sc, {.lod = doc::Lod::kParagraph,
                                       .rank = doc::RankBy::kIc});
  EXPECT_GT(lin.segments.size(), 20u);
  EXPECT_GT(lin.payload.size(), 8000u);   // a real paper-sized document
  EXPECT_NEAR(lin.content_of_prefix(lin.payload.size()), lin.total_content(), 1e-9);
  // The paper-shaped document fits the paper's dispersal shape (M <= 255
  // packets of 256 bytes).
  EXPECT_LT(lin.payload.size(), 255u * 256u);
}
