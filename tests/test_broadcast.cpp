// Broadcast ("air storage") dissemination.
#include <gtest/gtest.h>

#include <string>

#include "broadcast/broadcast.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "util/stats.hpp"
#include "xml/parser.hpp"

namespace broadcast = mobiweb::broadcast;
namespace doc = mobiweb::doc;
namespace channel = mobiweb::channel;
using mobiweb::ContractViolation;

namespace {

doc::LinearDocument make_doc(int paragraphs, int seedish) {
  std::string src = "<paper>";
  for (int p = 0; p < paragraphs; ++p) {
    src += "<para>";
    for (int w = 0; w < 20; ++w) {
      src += "d";
      src += std::to_string(seedish);
      src += "p";
      src += std::to_string(p);
      src += "w";
      src += std::to_string(w);
      src += " ";
    }
    src += "</para>";
  }
  src += "</paper>";
  doc::ScGenerator gen;
  return doc::linearize(gen.generate(mobiweb::xml::parse(src)),
                        {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
}

channel::WirelessChannel make_channel(double alpha, std::uint64_t seed = 1) {
  return channel::WirelessChannel({.seed = seed},
                                  std::make_unique<channel::IidErrorModel>(alpha));
}

}  // namespace

TEST(BroadcastServer, CycleContainsAllFrames) {
  broadcast::BroadcastServer server({.packet_size = 128, .gamma = 1.5});
  const auto d1 = make_doc(4, 1);
  const auto d2 = make_doc(6, 2);
  const auto id1 = server.publish(d1);
  const auto id2 = server.publish(d2);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(id2, 2);
  const auto& info1 = server.info(id1);
  const auto& info2 = server.info(id2);
  EXPECT_EQ(server.cycle_frames(), info1.n + info2.n);
  EXPECT_GE(info1.n, info1.m);
}

TEST(BroadcastServer, PublishAfterBuildRejected) {
  broadcast::BroadcastServer server;
  server.publish(make_doc(3, 1));
  (void)server.cycle();
  EXPECT_THROW(server.publish(make_doc(3, 2)), ContractViolation);
}

TEST(BroadcastServer, UnknownDocIdRejected) {
  broadcast::BroadcastServer server;
  server.publish(make_doc(3, 1));
  EXPECT_THROW((void)server.info(0), ContractViolation);
  EXPECT_THROW((void)server.info(2), ContractViolation);
}

TEST(BroadcastClient, CleanChannelFromCycleStart) {
  broadcast::BroadcastServer server({.packet_size = 128, .gamma = 1.5});
  const auto d = make_doc(5, 3);
  const auto id = server.publish(d);
  auto ch = make_channel(0.0);
  const auto r = broadcast::listen_for(server, id, 0, ch);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.payload, d.payload);
  // With a clean channel the client needs exactly m frames of its document.
  EXPECT_EQ(r.frames_of_doc, static_cast<long>(server.info(id).m));
}

TEST(BroadcastClient, MidCycleTuneInStillReconstructs) {
  broadcast::BroadcastServer server({.packet_size = 128, .gamma = 1.5});
  const auto d = make_doc(8, 4);
  const auto id = server.publish(d);
  const auto& info = server.info(id);
  auto ch = make_channel(0.0);
  // Tune in halfway through the document's frames: the client picks up the
  // tail (redundancy included) and wraps around — any m distinct frames do.
  const auto r = broadcast::listen_for(server, id, info.n / 2, ch);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.payload, d.payload);
  EXPECT_EQ(r.frames_of_doc, static_cast<long>(info.m));
}

TEST(BroadcastClient, LossyChannelUsesRedundancy) {
  broadcast::BroadcastServer server({.packet_size = 128, .gamma = 2.0});
  const auto d = make_doc(8, 5);
  const auto id = server.publish(d);
  auto ch = make_channel(0.3, 9);
  const auto r = broadcast::listen_for(server, id, 0, ch);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.payload, d.payload);
  // Corruption forced the client past the first m frames; the intact set it
  // finished with necessarily includes redundancy packets.
  EXPECT_GT(r.frames_heard, static_cast<long>(server.info(id).m));
}

TEST(BroadcastClient, OtherDocumentsFramesAreOverhead) {
  broadcast::BroadcastServer server({.packet_size = 128, .gamma = 1.5});
  const auto d1 = make_doc(4, 6);
  const auto d2 = make_doc(4, 7);
  server.publish(d1);
  const auto id2 = server.publish(d2);
  auto ch = make_channel(0.0);
  // Tuning in at cycle start (doc 1's frames) means waiting through them.
  const auto r = broadcast::listen_for(server, id2, 0, ch);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.frames_heard, r.frames_of_doc);
}

TEST(BroadcastClient, InterleavingShortensWaitForLateDocument) {
  // Sequential cycle: doc k's frames sit behind k-1 documents. Interleaved:
  // every document starts within #docs frames. Compare the wait for the last
  // document from offset 0 on a clean channel.
  const int docs = 5;
  auto build = [&](bool interleave) {
    broadcast::BroadcastServer server(
        {.packet_size = 128, .gamma = 1.5, .interleave = interleave});
    std::uint16_t last = 0;
    for (int i = 0; i < docs; ++i) last = server.publish(make_doc(4, 10 + i));
    auto ch = make_channel(0.0);
    return broadcast::listen_for(server, last, 0, ch).frames_heard;
  };
  EXPECT_LT(build(true), build(false));
}

TEST(BroadcastClient, ExpectedFramesMatchTheory) {
  // With corruption alpha and a single published document, the client must
  // hear ~m/(1-alpha) frames before holding m intact ones (corrupted frames
  // cannot be attributed to a document, so frames_of_doc counts only intact
  // ones — exactly m at completion).
  broadcast::BroadcastServer server({.packet_size = 128, .gamma = 3.0});
  const auto d = make_doc(10, 20);
  const auto id = server.publish(d);
  const auto m = static_cast<double>(server.info(id).m);
  mobiweb::RunningStats heard;
  for (int trial = 0; trial < 300; ++trial) {
    auto ch = make_channel(0.25, 100 + static_cast<std::uint64_t>(trial));
    const auto r = broadcast::listen_for(server, id, 0, ch);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.frames_of_doc, static_cast<long>(m));
    heard.add(static_cast<double>(r.frames_heard));
  }
  EXPECT_NEAR(heard.mean(), m / 0.75, m * 0.08);
}
