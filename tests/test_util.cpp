// util: bytes, CRC, RNG, EWMA, stats, table.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/bytes.hpp"
#include "util/check.hpp"
#include "util/crc.hpp"
#include "util/ewma.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace mw = mobiweb;

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hello \0 world";
  const mw::Bytes b = mw::to_bytes(s);
  EXPECT_EQ(mw::to_string(mw::ByteSpan(b)), s);
}

TEST(Bytes, HexRoundTrip) {
  const mw::Bytes b = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(mw::to_hex(mw::ByteSpan(b)), "0001deadbeefff");
  EXPECT_EQ(mw::from_hex("0001deadbeefff"), b);
  EXPECT_EQ(mw::from_hex("0001DEADBEEFFF"), b);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(mw::from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(mw::from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, IntegerRoundTrip) {
  mw::Bytes b;
  mw::put_u16(b, 0xbeef);
  mw::put_u32(b, 0xdeadc0de);
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(mw::get_u16(mw::ByteSpan(b), 0), 0xbeef);
  EXPECT_EQ(mw::get_u32(mw::ByteSpan(b), 2), 0xdeadc0de);
}

TEST(Bytes, GetOutOfRangeThrows) {
  const mw::Bytes b = {1, 2, 3};
  EXPECT_THROW(mw::get_u32(mw::ByteSpan(b), 0), std::out_of_range);
  EXPECT_THROW(mw::get_u16(mw::ByteSpan(b), 2), std::out_of_range);
}

TEST(Crc32, KnownVectors) {
  // Standard check value for "123456789".
  const mw::Bytes check = mw::to_bytes("123456789");
  EXPECT_EQ(mw::crc32(mw::ByteSpan(check)), 0xCBF43926u);
  const mw::Bytes empty;
  EXPECT_EQ(mw::crc32(mw::ByteSpan(empty)), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const mw::Bytes data = mw::to_bytes("the quick brown fox jumps over the lazy dog");
  mw::Crc32 inc;
  inc.update(mw::ByteSpan(data).subspan(0, 10));
  inc.update(mw::ByteSpan(data).subspan(10));
  EXPECT_EQ(inc.value(), mw::crc32(mw::ByteSpan(data)));
}

TEST(Crc32, DetectsSingleBitFlip) {
  mw::Bytes data = mw::to_bytes("some packet payload for corruption detection");
  const std::uint32_t before = mw::crc32(mw::ByteSpan(data));
  data[7] ^= 0x01;
  EXPECT_NE(mw::crc32(mw::ByteSpan(data)), before);
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE check value for "123456789".
  const mw::Bytes check = mw::to_bytes("123456789");
  EXPECT_EQ(mw::crc16_ccitt(mw::ByteSpan(check)), 0x29B1);
}

TEST(Rng, Deterministic) {
  mw::Rng a(123);
  mw::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  mw::Rng a(1);
  mw::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  mw::Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  mw::Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), mw::ContractViolation);
}

TEST(Rng, BernoulliFrequency) {
  mw::Rng rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bernoulli(0.3);
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(Rng, UniformMean) {
  mw::Rng rng(12);
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.next_range(1.0, 3.0);
  EXPECT_NEAR(sum / trials, 2.0, 0.02);
}

TEST(Rng, ForkIndependent) {
  mw::Rng parent(13);
  mw::Rng child1 = parent.fork();
  mw::Rng child2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child1.next_u64() == child2.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Ewma, FirstObservationInitializes) {
  mw::Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.value_or(42.0), 42.0);
  e.observe(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_EQ(e.value(), 10.0);
}

TEST(Ewma, Smoothing) {
  mw::Ewma e(0.5);
  e.observe(0.0);
  e.observe(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.5);
  e.observe(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.75);
}

TEST(Ewma, ConvergesToConstant) {
  mw::Ewma e(0.25);
  for (int i = 0; i < 200; ++i) e.observe(0.37);
  EXPECT_NEAR(e.value(), 0.37, 1e-9);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(mw::Ewma(0.0), mw::ContractViolation);
  EXPECT_THROW(mw::Ewma(1.5), mw::ContractViolation);
  EXPECT_NO_THROW(mw::Ewma(1.0));
}

TEST(Stats, MeanAndStddev) {
  mw::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyAndSingle) {
  mw::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Stats, MergeMatchesSequential) {
  mw::RunningStats all;
  mw::RunningStats a;
  mw::RunningStats b;
  mw::Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_range(-5, 5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, Summarize) {
  const mw::Summary s = mw::summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Table, RendersAlignedAndCsv) {
  mw::TextTable t({"alpha", "N"});
  t.add_row({"0.1", "47"});
  t.add_row({"0.25", "60"});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("| alpha |"), std::string::npos);
  EXPECT_NE(rendered.find("|  0.25 |"), std::string::npos);
  EXPECT_EQ(t.render_csv(), "alpha,N\n0.1,47\n0.25,60\n");
}

TEST(Table, ArityMismatchThrows) {
  mw::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), mw::ContractViolation);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(mw::TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(mw::TextTable::fmt(1.0, 0), "1");
}

TEST(Check, MacroThrowsWithContext) {
  try {
    MOBIWEB_CHECK_MSG(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const mw::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

// ---- ThreadPool ----

TEST(ThreadPool, RunsEveryShardExactlyOnce) {
  mw::ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](std::size_t s) { hits[s].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsSerially) {
  mw::ThreadPool pool(0);  // may resolve to 0 extra threads on 1-core hosts
  std::atomic<int> sum{0};
  pool.run(10, [&](std::size_t s) { sum.fetch_add(static_cast<int>(s)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ZeroShardsIsNoop) {
  mw::ThreadPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "shard ran"; });
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  mw::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 16, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  mw::ThreadPool pool(2);
  pool.parallel_for(5, 5, 1, [](std::size_t, std::size_t) { FAIL() << "ran"; });
}

TEST(ThreadPool, ExceptionsPropagate) {
  mw::ThreadPool pool(3);
  EXPECT_THROW(
      pool.run(50,
               [](std::size_t s) {
                 if (s == 17) throw std::runtime_error("shard 17 failed");
               }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  mw::ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.run(8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&mw::ThreadPool::global(), &mw::ThreadPool::global());
  EXPECT_GE(mw::ThreadPool::global().concurrency(), 1u);
}

// ---- ThreadPool re-entrancy ----
//
// run() from a thread that is already executing one of the pool's shards must
// execute inline. The pre-fix implementation enqueued the nested batch and
// parked the worker in a completion wait; with every worker nested that way
// the pool could wedge with work queued and nobody left to pump it. These
// tests run the nested workload under a watchdog so a reintroduced wedge
// shows up as a clean failure, not a hung test binary.

namespace {

// Runs `body` on a throwaway thread and fails (leaking the thread) if it does
// not finish within `budget` — the hang itself is the regression.
void expect_finishes_within(std::chrono::seconds budget,
                            const std::function<void()>& body) {
  std::promise<void> done;
  auto fut = done.get_future();
  std::thread t([&body, &done] {
    body();
    done.set_value();
  });
  if (fut.wait_for(budget) == std::future_status::ready) {
    t.join();
    return;
  }
  t.detach();  // wedged inside the pool; abandon it
  FAIL() << "nested ThreadPool::run did not finish within the watchdog";
}

}  // namespace

TEST(ThreadPool, NestedRunCompletesUnderWatchdog) {
  expect_finishes_within(std::chrono::seconds(60), [] {
    mw::ThreadPool pool(2);
    for (int round = 0; round < 200; ++round) {
      std::atomic<int> count{0};
      pool.run(8, [&](std::size_t) {
        pool.run(8, [&](std::size_t) {
          pool.run(4, [&](std::size_t) { count.fetch_add(1); });
        });
      });
      ASSERT_EQ(count.load(), 8 * 8 * 4);
    }
  });
}

TEST(ThreadPool, NestedRunExecutesInlineOnSameThread) {
  mw::ThreadPool pool(3);
  std::atomic<int> mismatches{0};
  std::atomic<int> nested_shards{0};
  pool.run(8, [&](std::size_t) {
    EXPECT_TRUE(pool.in_worker());
    const std::thread::id outer = std::this_thread::get_id();
    pool.run(5, [&](std::size_t) {
      nested_shards.fetch_add(1);
      if (std::this_thread::get_id() != outer) mismatches.fetch_add(1);
    });
  });
  EXPECT_EQ(nested_shards.load(), 8 * 5);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_FALSE(pool.in_worker());
}

TEST(ThreadPool, NestedExceptionPropagatesThroughInlineRun) {
  mw::ThreadPool pool(2);
  EXPECT_THROW(pool.run(4,
                        [&](std::size_t s) {
                          pool.run(3, [&](std::size_t t) {
                            if (s == 1 && t == 2) {
                              throw std::runtime_error("nested failure");
                            }
                          });
                        }),
               std::runtime_error);
}

TEST(ThreadPool, InWorkerIsPerPool) {
  mw::ThreadPool a(2);
  mw::ThreadPool b(2);
  EXPECT_FALSE(a.in_worker());
  a.run(4, [&](std::size_t) {
    EXPECT_TRUE(a.in_worker());
    EXPECT_FALSE(b.in_worker());
  });
}

// Construction-race safety: concurrent first use of a pool must be benign.
// ThreadPool::global() is a magic static (initialized exactly once even under
// a race); a ThreadPool(0) on a 1-core host must degrade to serial execution
// rather than touch uninitialized worker state.
TEST(ThreadPool, ConcurrentGlobalUseIsSafe) {
  constexpr int kThreads = 8;
  std::atomic<const mw::ThreadPool*> first{nullptr};
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      mw::ThreadPool& pool = mw::ThreadPool::global();
      const mw::ThreadPool* expected = nullptr;
      first.compare_exchange_strong(expected, &pool);
      EXPECT_EQ(first.load(), &pool);
      pool.run(16, [&](std::size_t) { sum.fetch_add(1); });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), kThreads * 16);
}

TEST(ThreadPool, ConcurrentConstructionOfIndependentPools) {
  constexpr int kThreads = 6;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      mw::ThreadPool pool(static_cast<std::size_t>(i % 3));
      pool.run(10, [&](std::size_t) { sum.fetch_add(1); });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), kThreads * 10);
}
