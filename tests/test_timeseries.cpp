// Fleet telemetry: TimeSeries bucketing/clamping/merge algebra, the
// per-session breadcrumb ring, tail-based trace retention (exact top-k plus
// every failure, bounded, deterministic under ties), shard-count
// bit-invariance of the whole exported timeline document, and the
// FlightRecorder postmortem wiring for degraded / gave-up sessions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "channel/outage.hpp"
#include "fleet/engine.hpp"
#include "fleet/telemetry.hpp"
#include "obs/flight.hpp"
#include "obs/timeseries.hpp"

namespace mw = mobiweb;
namespace fleet = mobiweb::fleet;
namespace obs = mobiweb::obs;

namespace {

// Weakly-connected fleet with a retry budget tight enough that some sessions
// terminate degraded — the population whose traces must always survive
// retention.
fleet::FleetConfig lossy_config(std::size_t sessions) {
  fleet::FleetConfig cfg;
  cfg.corpus.corpus_size = 8;
  cfg.corpus.seed = 77;
  cfg.sessions = sessions;
  cfg.seed = 1234;
  cfg.alpha = 0.25;
  cfg.request_delay = 2.0;
  cfg.max_rounds = 25;
  cfg.arrival_spread_s = 30.0;
  cfg.outage = std::make_shared<mw::channel::MarkovOutageModel>(
      mw::channel::MarkovOutageModel::with_duty_cycle(0.3, 5.0));
  cfg.retry.retry_budget = 8;
  cfg.retry.initial_timeout_s = 0.5;
  cfg.retry.backoff_multiplier = 2.0;
  cfg.retry.max_backoff_s = 30.0;
  cfg.retry.jitter = 0.1;
  cfg.telemetry.emplace();
  cfg.telemetry->bucket_width_s = 2.0;
  cfg.telemetry->trace_top_fraction = 0.02;
  return cfg;
}

fleet::FleetResult run_with_shards(fleet::FleetConfig cfg, std::size_t shards) {
  cfg.shards = shards;
  fleet::FleetEngine engine(cfg);
  return engine.run();
}

}  // namespace

// ---- TimeSeries algebra ---------------------------------------------------

TEST(TimeSeries, AddsLandInFloorBuckets) {
  obs::TimeSeries ts(2.0, 16);
  ASSERT_TRUE(ts.engaged());
  ts.add(obs::Channel::kRounds, 0.0);
  ts.add(obs::Channel::kRounds, 1.99);
  ts.add(obs::Channel::kRounds, 2.0);
  ts.add(obs::Channel::kRounds, 7.5, 3);
  EXPECT_EQ(ts.buckets(), 4u);
  EXPECT_EQ(ts.at(obs::Channel::kRounds, 0), 2);
  EXPECT_EQ(ts.at(obs::Channel::kRounds, 1), 1);
  EXPECT_EQ(ts.at(obs::Channel::kRounds, 2), 0);
  EXPECT_EQ(ts.at(obs::Channel::kRounds, 3), 3);
  EXPECT_EQ(ts.total(obs::Channel::kRounds), 6);
  // Channels that never recorded read as all-zero, not out-of-range.
  EXPECT_EQ(ts.total(obs::Channel::kHandoffs), 0);
  EXPECT_EQ(ts.at(obs::Channel::kHandoffs, 3), 0);
  EXPECT_EQ(ts.clamped(), 0);
}

TEST(TimeSeries, AddsPastTheWindowClampIntoTheLastBucket) {
  obs::TimeSeries ts(1.0, 4);
  ts.add(obs::Channel::kFramesSent, 0.5);
  ts.add(obs::Channel::kFramesSent, 100.0);   // past the window
  ts.add(obs::Channel::kFramesSent, 1e9, 5);  // far past it
  EXPECT_EQ(ts.buckets(), 4u);
  EXPECT_EQ(ts.at(obs::Channel::kFramesSent, 0), 1);
  EXPECT_EQ(ts.at(obs::Channel::kFramesSent, 3), 6);
  EXPECT_EQ(ts.clamped(), 2);  // two add() calls were clamped
  EXPECT_EQ(ts.total(obs::Channel::kFramesSent), 7);
}

TEST(TimeSeries, MergeIsOrderIndependent) {
  const auto make = [](double t0, long d) {
    obs::TimeSeries ts(1.0, 32);
    ts.add(obs::Channel::kFramesSent, t0, d);
    ts.add(obs::Channel::kFramesLost, t0 + 3.0, d + 1);
    ts.add(obs::Channel::kSuspensions, 40.0);  // clamps: 32-bucket window
    return ts;
  };
  const obs::TimeSeries a = make(0.2, 1), b = make(5.7, 10), c = make(9.9, 100);

  obs::TimeSeries ab = a;
  ab.merge(b);
  ab.merge(c);
  obs::TimeSeries ba = c;
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.clamped(), 3);
  EXPECT_EQ(ab.total(obs::Channel::kFramesSent), 111);
}

TEST(TimeSeries, DisengagedDefaultIsANoOp) {
  obs::TimeSeries ts;
  EXPECT_FALSE(ts.engaged());
  ts.add(obs::Channel::kRounds, 5.0);
  EXPECT_EQ(ts.buckets(), 0u);
  EXPECT_EQ(ts.total(obs::Channel::kRounds), 0);
  // Merging a disengaged series into an engaged one changes nothing; merging
  // an engaged one into a disengaged one adopts it.
  obs::TimeSeries live(1.0, 8);
  live.add(obs::Channel::kRounds, 0.0, 7);
  const std::string before = live.to_json();
  live.merge(ts);
  EXPECT_EQ(live.to_json(), before);
  ts.merge(live);
  EXPECT_EQ(ts.to_json(), before);
}

TEST(TimeSeries, ChannelNamesAreDistinctSnakeCase) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kChannelCount; ++i) {
    const std::string name = obs::channel_name(static_cast<obs::Channel>(i));
    EXPECT_NE(name, "unknown");
    for (const char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_') << name;
    }
    names.insert(name);
  }
  EXPECT_EQ(names.size(), obs::kChannelCount);
}

// ---- CrumbLog -------------------------------------------------------------

TEST(CrumbLog, OverwritesOldestAndSnapshotsInOrder) {
  fleet::CrumbLog log(4);
  for (int i = 0; i < 6; ++i) {
    log.push(obs::Event::kRoundEnd, static_cast<double>(i), i);
  }
  EXPECT_EQ(log.recorded(), 6);
  EXPECT_EQ(log.dropped(), 2);
  const std::vector<fleet::Crumb> kept = log.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[static_cast<std::size_t>(i)].aux, i + 2);  // oldest first
  }
}

TEST(CrumbLog, UnderfilledSnapshotHasNoPadding) {
  fleet::CrumbLog log(8);
  log.push(obs::Event::kSessionStart, 0.0);
  log.push(obs::Event::kDecodeComplete, 1.0);
  EXPECT_EQ(log.dropped(), 0);
  const std::vector<fleet::Crumb> kept = log.snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].type, obs::Event::kSessionStart);
  EXPECT_EQ(kept[1].type, obs::Event::kDecodeComplete);
}

// ---- Timeline document shard invariance -----------------------------------

TEST(FleetTelemetry, TimelineDocumentBitIdenticalAcrossShardCounts) {
  const fleet::FleetConfig cfg = lossy_config(400);
  const fleet::FleetResult r1 = run_with_shards(cfg, 1);
  EXPECT_GT(r1.degraded + r1.gave_up, 0) << "config must produce failures";
  const std::string doc1 = fleet::timeline_document(r1, cfg);
  EXPECT_NE(doc1.find("\"schema\": \"mobiweb-timeline/1\""), std::string::npos);
  for (const std::size_t shards : {4u, 7u}) {
    const fleet::FleetResult rs = run_with_shards(cfg, shards);
    EXPECT_EQ(doc1, fleet::timeline_document(rs, cfg))
        << "timeline diverged at " << shards << " shards";
  }
}

TEST(FleetTelemetry, TimeSeriesTotalsMatchFleetAggregates) {
  const fleet::FleetConfig cfg = lossy_config(300);
  const fleet::FleetResult r = run_with_shards(cfg, 3);
  const obs::TimeSeries& ts = r.timeseries;
  ASSERT_TRUE(ts.engaged());
  EXPECT_EQ(ts.total(obs::Channel::kSessionsStarted),
            static_cast<long>(r.sessions));
  EXPECT_EQ(ts.total(obs::Channel::kSessionsEnded),
            static_cast<long>(r.sessions));
  EXPECT_EQ(ts.total(obs::Channel::kSessionsFailed), r.degraded + r.gave_up);
  EXPECT_EQ(ts.total(obs::Channel::kFramesSent), r.frames_sent);
  EXPECT_EQ(ts.total(obs::Channel::kFramesLost), r.frames_lost);
  EXPECT_EQ(ts.total(obs::Channel::kSuspensions), r.suspensions);
  // kRounds counts stalled (non-terminal) round boundaries only — a round
  // that completes or aborts the session ends mid-round, so the channel is
  // the fleet round total minus one terminal round per such session.
  EXPECT_EQ(ts.total(obs::Channel::kRounds),
            r.rounds - r.completed - r.aborted_irrelevant);
}

// ---- Tail-based trace retention -------------------------------------------

TEST(FleetTelemetry, TiedTailBreaksOnSessionIndexExactly) {
  // One document, no corruption, no outage, simultaneous arrivals: every
  // session's transfer time is identical, so the tail ranking is decided
  // purely by the deterministic tie-break (session index ascending) — and it
  // must hold across a shard split, where each shard offers its own
  // candidates.
  fleet::FleetConfig cfg;
  cfg.corpus.corpus_size = 1;
  cfg.corpus.seed = 9;
  cfg.sessions = 40;
  cfg.seed = 7;
  cfg.alpha = 0.0;
  cfg.arrival_spread_s = 0.0;
  cfg.telemetry.emplace();
  cfg.telemetry->trace_top_fraction = 0.1;  // k = 4
  const fleet::FleetResult r = run_with_shards(cfg, 3);
  EXPECT_EQ(r.trace_tail_target, 4u);
  ASSERT_EQ(r.traces.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.traces[i].session, i);
    EXPECT_FALSE(r.traces[i].failed);
    EXPECT_DOUBLE_EQ(r.traces[i].time_s, r.traces[0].time_s);
  }
}

TEST(FleetTelemetry, RetentionKeepsEveryFailureAndTheExactSlowestTail) {
  fleet::FleetConfig cfg = lossy_config(250);
  cfg.record_outcomes = true;
  cfg.telemetry->trace_top_fraction = 0.04;  // k = 10
  const fleet::FleetResult r = run_with_shards(cfg, 4);
  ASSERT_EQ(r.outcomes.size(), r.sessions);

  std::set<std::uint32_t> failed_sessions;
  for (const fleet::SessionOutcome& o : r.outcomes) {
    if (o.result.gave_up || o.result.degraded) failed_sessions.insert(o.session);
  }
  ASSERT_GT(failed_sessions.size(), 0u);

  // Bounded: never more than the tail target plus the failures; every failed
  // session retained and flagged; traces sorted by session index.
  EXPECT_LE(r.traces.size(), r.trace_tail_target + failed_sessions.size());
  std::set<std::uint32_t> retained;
  for (const fleet::RetainedTrace& rt : r.traces) {
    EXPECT_TRUE(retained.insert(rt.session).second) << "duplicate trace";
    EXPECT_EQ(rt.failed, failed_sessions.count(rt.session) == 1);
    EXPECT_GT(rt.trace.events().size(), 0u);
  }
  for (const std::uint32_t s : failed_sessions) EXPECT_EQ(retained.count(s), 1u);

  // Exact top-k: every retained non-failed session must rank at or above
  // every non-retained session under the total tail order.
  double slowest_dropped = -1.0;
  std::uint32_t slowest_dropped_id = 0;
  for (const fleet::SessionOutcome& o : r.outcomes) {
    if (retained.count(o.session)) continue;
    if (slowest_dropped < 0.0 ||
        fleet::ranks_before(o.result.time, o.session, slowest_dropped,
                            slowest_dropped_id)) {
      slowest_dropped = o.result.time;
      slowest_dropped_id = o.session;
    }
  }
  ASSERT_GE(slowest_dropped, 0.0);
  for (const fleet::RetainedTrace& rt : r.traces) {
    if (rt.failed) continue;
    EXPECT_TRUE(fleet::ranks_before(rt.time_s, rt.session, slowest_dropped,
                                    slowest_dropped_id))
        << "session " << rt.session << " retained over a slower one";
  }
}

TEST(FleetTelemetry, MaterializedTracesCarryTheTerminalVerdict) {
  fleet::FleetConfig cfg = lossy_config(200);
  const fleet::FleetResult r = run_with_shards(cfg, 2);
  ASSERT_GT(r.traces.size(), 0u);
  for (const fleet::RetainedTrace& rt : r.traces) {
    const obs::SessionTrace& t = rt.trace;
    EXPECT_EQ(rt.failed, t.degraded() || t.gave_up());
    EXPECT_GE(t.end_time(), t.start_time());
    ASSERT_FALSE(t.events().empty());
    EXPECT_EQ(t.events().front().type, obs::Event::kSessionStart);
    EXPECT_EQ(t.events().back().type, obs::Event::kSessionEnd);
    EXPECT_NE(t.label().find("session " + std::to_string(rt.session)),
              std::string::npos);
  }
}

// ---- FlightRecorder postmortem wiring -------------------------------------

TEST(FleetTelemetry, FlightRecorderDumpsEveryFailedSession) {
  obs::FlightRecorder flight(64);
  std::vector<std::string> dumps;
  flight.set_sink([&dumps](const std::string& json) { dumps.push_back(json); });

  fleet::FleetConfig cfg = lossy_config(200);
  cfg.telemetry->flight = &flight;
  const fleet::FleetResult r = run_with_shards(cfg, 3);
  const long failures = r.degraded + r.gave_up;
  ASSERT_GT(failures, 0);
  EXPECT_EQ(static_cast<long>(dumps.size()), failures);
  EXPECT_EQ(flight.dump_count(), static_cast<int>(failures));
  for (const std::string& json : dumps) {
    const bool tagged = json.find("fleet.degraded") != std::string::npos ||
                        json.find("fleet.gave_up") != std::string::npos;
    EXPECT_TRUE(tagged) << json.substr(0, 120);
  }
}

TEST(FleetTelemetry, TelemetryNeverAltersSessionResults) {
  // The whole instrumentation layer observes; it must not consume RNG draws
  // or change accounting. Same config with telemetry on and off must agree
  // on every aggregate.
  fleet::FleetConfig with = lossy_config(200);
  fleet::FleetConfig without = with;
  without.telemetry.reset();
  const fleet::FleetResult a = run_with_shards(with, 2);
  const fleet::FleetResult b = run_with_shards(without, 2);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.suspensions, b.suspensions);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_DOUBLE_EQ(a.session_time_s, b.session_time_s);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}
