// Selective-repeat ARQ: real stack, analytic simulator, and their agreement.
#include <gtest/gtest.h>

#include <string>

#include "channel/channel.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "obs/trace.hpp"
#include "sim/transfer.hpp"
#include "transmit/arq.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace sim = mobiweb::sim;
namespace transmit = mobiweb::transmit;
namespace channel = mobiweb::channel;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using mobiweb::Rng;

namespace {

doc::LinearDocument make_linear() {
  std::string src = "<paper>";
  for (int p = 0; p < 8; ++p) {
    src += "<para>";
    for (int w = 0; w < 25; ++w) {
      src += "tok" + std::to_string(p) + "v" + std::to_string(w) + " ";
    }
    src += "</para>";
  }
  src += "</paper>";
  doc::ScGenerator gen;
  return doc::linearize(gen.generate(mobiweb::xml::parse(src)),
                        {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
}

struct Rig {
  transmit::DocumentTransmitter tx;
  transmit::ClientReceiver rx;
  channel::WirelessChannel ch;

  Rig(const doc::LinearDocument& lin, double alpha, std::uint64_t seed)
      : tx(lin, {.packet_size = 128, .gamma = 1.0}),
        rx({.doc_id = tx.doc_id(), .m = tx.m(), .n = tx.n(), .packet_size = 128,
            .payload_size = tx.payload_size(), .caching = true},
           lin.segments),
        ch({.seed = seed}, std::make_unique<channel::IidErrorModel>(alpha)) {}
};

}  // namespace

TEST(ArqReal, CleanChannelOneRound) {
  const auto lin = make_linear();
  Rig s(lin, 0.0, 1);
  transmit::ArqSession session(s.tx, s.rx, s.ch);
  const auto r = session.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.frames_sent, static_cast<long>(s.tx.m()));
  EXPECT_EQ(s.rx.reconstruct(), lin.payload);
}

TEST(ArqReal, LossyChannelResendsOnlyMissing) {
  const auto lin = make_linear();
  Rig s(lin, 0.3, 7);
  transmit::ArqSession session(s.tx, s.rx, s.ch);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(s.rx.reconstruct(), lin.payload);
  // Selective repeat never sends more than rounds * m frames, and with any
  // loss it needs strictly fewer than a full-restart scheme would.
  EXPECT_LT(r.frames_sent, r.rounds * static_cast<long>(s.tx.m()) + 1);
}

TEST(ArqReal, FeedbackDelayCharged) {
  const auto lin = make_linear();
  Rig s(lin, 0.4, 3);
  transmit::ArqConfig cfg;
  cfg.feedback_delay_s = 2.0;
  transmit::ArqSession session(s.tx, s.rx, s.ch, cfg);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.rounds, 1);
  const double frame_time =
      static_cast<double>(s.tx.frame(0).size()) * 8.0 / 19200.0;
  const double packet_time = static_cast<double>(r.frames_sent) * frame_time;
  EXPECT_NEAR(r.response_time - packet_time, 2.0 * (r.rounds - 1), 1e-9);
}

TEST(ArqReal, RelevanceAbort) {
  const auto lin = make_linear();
  Rig s(lin, 0.0, 1);
  transmit::ArqConfig cfg;
  cfg.relevance_threshold = 0.3;
  transmit::ArqSession session(s.tx, s.rx, s.ch, cfg);
  const auto r = session.run();
  EXPECT_TRUE(r.aborted_irrelevant);
  EXPECT_LT(r.frames_sent, static_cast<long>(s.tx.m()));
}

TEST(ArqReal, CompletionOnFinalFrameBeatsRelevanceAbort) {
  // Regression: with the threshold checked before completion, a document
  // whose last missing packet pushed the content to the threshold on the
  // frame that also completed it was misfiled as an irrelevance abort.
  const auto lin = make_linear();
  Rig s(lin, 0.0, 1);
  transmit::ArqConfig cfg;
  cfg.relevance_threshold = lin.total_content();  // met only on the last frame
  transmit::ArqSession session(s.tx, s.rx, s.ch, cfg);
  const auto r = session.run();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.aborted_irrelevant);
  EXPECT_EQ(r.frames_sent, static_cast<long>(s.tx.m()));
}

TEST(ArqReal, ResponseTimeIncludesPropagationDelay) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx({.doc_id = tx.doc_id(), .m = tx.m(), .n = tx.n(),
                               .packet_size = 128,
                               .payload_size = tx.payload_size(), .caching = true},
                              lin.segments);
  channel::ChannelConfig cc;
  cc.propagation_delay_s = 0.5;
  channel::WirelessChannel ch(cc, std::make_unique<channel::IidErrorModel>(0.0));
  transmit::ArqSession session(tx, rx, ch);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);
  const double frame_time = ch.transmit_time(tx.frame(0).size());
  EXPECT_NEAR(r.response_time,
              static_cast<double>(tx.m()) * frame_time + 0.5, 1e-9);
}

TEST(ArqReal, TraceRecordsNackSizes) {
  const auto lin = make_linear();
  Rig s(lin, 0.3, 7);
  mobiweb::obs::SessionTrace trace;
  trace.capture_events(true);
  transmit::ArqConfig cfg;
  cfg.trace = &trace;
  transmit::ArqSession session(s.tx, s.rx, s.ch, cfg);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);
  ASSERT_GT(r.rounds, 1);
  EXPECT_EQ(static_cast<int>(trace.rounds().size()), r.rounds);
  EXPECT_EQ(trace.frames_sent(), r.frames_sent);
  // Every retransmit request carries the NACK size; it can never grow.
  long prev = static_cast<long>(s.tx.m());
  int requests = 0;
  for (const auto& e : trace.events()) {
    if (e.type != mobiweb::obs::Event::kRetransmitRequest) continue;
    ++requests;
    const long pending = static_cast<long>(e.value);
    EXPECT_GT(pending, 0);
    EXPECT_LE(pending, prev);
    prev = pending;
  }
  EXPECT_EQ(requests, r.rounds - 1);
}

TEST(ArqReal, RequiresNoRedundancy) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx({.doc_id = tx.doc_id(), .m = tx.m(), .n = tx.n(),
                               .packet_size = 128,
                               .payload_size = tx.payload_size(), .caching = true},
                              lin.segments);
  channel::WirelessChannel ch({}, std::make_unique<channel::IidErrorModel>(0.0));
  EXPECT_THROW(transmit::ArqSession(tx, rx, ch), ContractViolation);
}

TEST(ArqSim, CleanChannelExact) {
  sim::TransferConfig cfg;
  cfg.m = 40;
  cfg.n = 40;
  cfg.alpha = 0.0;
  Rng rng(90);
  const std::vector<double> content(40, 1.0 / 40);
  const auto r = sim::simulate_arq_transfer(content, cfg, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.packets, 40);
  EXPECT_EQ(r.rounds, 1);
}

TEST(ArqSim, ExpectedPacketsNearMOverOneMinusAlpha) {
  sim::TransferConfig cfg;
  cfg.m = 40;
  cfg.n = 40;
  cfg.alpha = 0.25;
  cfg.max_rounds = 100;
  Rng rng(91);
  const std::vector<double> content(40, 1.0 / 40);
  double packets = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto r = sim::simulate_arq_transfer(content, cfg, rng);
    ASSERT_TRUE(r.completed);
    packets += static_cast<double>(r.packets);
  }
  // Selective repeat sends each packet until it gets through: E = m/(1-alpha).
  EXPECT_NEAR(packets / trials, 40.0 / 0.75, 1.0);
}

TEST(ArqSim, ScriptedPattern) {
  sim::TransferConfig cfg;
  cfg.m = 4;
  cfg.n = 4;
  // Round 1: packets 0,1 corrupted, 2,3 ok. Round 2 resends {0,1}: 0 ok,
  // 1 corrupted. Round 3 resends {1}: ok. Total 4 + 2 + 1 = 7 packets.
  const std::vector<bool> pattern = {true, true, false, false,
                                     false, true, false};
  std::size_t pos = 0;
  const std::vector<double> content(4, 0.25);
  const auto r = sim::simulate_arq_transfer(
      content, cfg, [&] { return pattern[pos++]; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.packets, 7);
  EXPECT_EQ(r.rounds, 3);
}

TEST(ArqSimVsReal, IdenticalDecisions) {
  const auto lin = make_linear();
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    // Pre-draw one corruption pattern; replay into both stacks.
    Rng pattern_rng(seed * 131);
    std::vector<bool> pattern(4096);
    for (auto&& b : pattern) b = pattern_rng.next_bernoulli(0.3);

    // Real.
    class Scripted final : public channel::ErrorModel {
     public:
      explicit Scripted(const std::vector<bool>& p) : p_(p) {}
      bool next_corrupted(Rng&) override { return p_[i_++ % p_.size()]; }
      double steady_state_rate() const override { return 0.0; }
      std::unique_ptr<channel::ErrorModel> clone() const override {
        return std::make_unique<Scripted>(p_);
      }

     private:
      const std::vector<bool>& p_;
      std::size_t i_ = 0;
    };
    transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
    transmit::ClientReceiver rx({.doc_id = tx.doc_id(), .m = tx.m(), .n = tx.n(),
                                 .packet_size = 128,
                                 .payload_size = tx.payload_size(),
                                 .caching = true},
                                lin.segments);
    channel::WirelessChannel ch({}, std::make_unique<Scripted>(pattern));
    transmit::ArqSession session(tx, rx, ch);
    const auto real = session.run();

    // Sim.
    std::vector<double> content(tx.m());
    for (std::size_t i = 0; i < tx.m(); ++i) {
      const std::size_t begin = i * 128;
      const std::size_t end = std::min(begin + 128, tx.payload_size());
      content[i] = tx.document().content_of_range(begin, end);
    }
    sim::TransferConfig cfg;
    cfg.m = static_cast<int>(tx.m());
    cfg.n = cfg.m;
    cfg.max_rounds = 1000;
    std::size_t pos = 0;
    const auto simulated = sim::simulate_arq_transfer(
        content, cfg, [&] { return pattern[pos++ % pattern.size()]; });

    EXPECT_EQ(real.frames_sent, simulated.packets) << seed;
    EXPECT_EQ(real.rounds, simulated.rounds) << seed;
    EXPECT_EQ(real.completed, simulated.completed) << seed;
  }
}
