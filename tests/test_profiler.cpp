// Hot-path profiler: detached no-op contract, nesting self/total accounting,
// multi-thread merge, timeline capture, reset, depth overflow, and the
// attach/detach generation guard — plus one pass through the instrumented
// parallel IDA path.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ida/ida.hpp"
#include "obs/profile.hpp"
#include "util/rng.hpp"

namespace obs = mobiweb::obs;

namespace {

// Deterministic busy work the optimizer cannot elide.
long spin(long iters) {
  volatile long acc = 0;
  for (long i = 0; i < iters; ++i) acc += i;
  return acc;
}

const obs::ProfileEntry* find_entry(const std::vector<obs::ProfileEntry>& es,
                                    const std::string& name) {
  for (const auto& e : es) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void recurse(int depth) {
  MOBIWEB_PROFILE_SCOPE("prof.recurse");
  if (depth > 0) recurse(depth - 1);
}

}  // namespace

TEST(Profiler, DetachedScopesRecordNothing) {
  ASSERT_EQ(obs::Profiler::active(), nullptr);
  {
    MOBIWEB_PROFILE_SCOPE("prof.detached");
    spin(100);
  }
  obs::Profiler profiler;  // never attached: nothing can have reached it
  EXPECT_TRUE(profiler.report().empty());
  EXPECT_EQ(profiler.dropped_scopes(), 0);
}

TEST(Profiler, NestedScopesSplitSelfAndTotal) {
  obs::Profiler profiler;
  profiler.attach();
  {
    MOBIWEB_PROFILE_SCOPE("prof.outer");
    spin(2000);
    for (int i = 0; i < 3; ++i) {
      MOBIWEB_PROFILE_SCOPE("prof.inner");
      spin(2000);
    }
  }
  obs::Profiler::detach();

  const auto entries = profiler.report();
  const auto* outer = find_entry(entries, "prof.outer");
  const auto* inner = find_entry(entries, "prof.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_EQ(inner->count, 3);
  // Outer's inclusive time contains inner's; its self time excludes it.
  EXPECT_GE(outer->total_s, inner->total_s);
  EXPECT_LE(outer->self_s, outer->total_s - inner->total_s + 1e-9);
  EXPECT_GE(outer->self_s, 0.0);
  // Leaf scope: self == total.
  EXPECT_DOUBLE_EQ(inner->self_s, inner->total_s);

  const std::string table = profiler.table();
  EXPECT_NE(table.find("prof.outer"), std::string::npos);
  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("\"name\": \"prof.inner\", \"count\": 3"),
            std::string::npos);
}

TEST(Profiler, MergesAcrossThreads) {
  obs::Profiler profiler;
  profiler.attach();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      MOBIWEB_PROFILE_SCOPE("prof.worker");
      spin(1000);
    });
  }
  for (auto& t : threads) t.join();
  obs::Profiler::detach();

  const auto entries = profiler.report();
  const auto* worker = find_entry(entries, "prof.worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, 4);
}

TEST(Profiler, TimelineCaptureEmitsPerfettoSpans) {
  obs::Profiler profiler;
  profiler.capture_timeline(true);
  profiler.attach();
  {
    MOBIWEB_PROFILE_SCOPE("prof.span");
    spin(500);
  }
  obs::Profiler::detach();
  EXPECT_EQ(profiler.dropped_events(), 0);
  const std::string json = profiler.timeline_json();
  EXPECT_NE(json.find("\"name\": \"profiler thread 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\", \"name\": \"prof.span\", "
                      "\"cat\": \"profile\""),
            std::string::npos);
}

TEST(Profiler, ResetForgetsAccumulatedData) {
  obs::Profiler profiler;
  profiler.attach();
  {
    MOBIWEB_PROFILE_SCOPE("prof.before");
    spin(100);
  }
  profiler.reset();
  {
    MOBIWEB_PROFILE_SCOPE("prof.after");
    spin(100);
  }
  obs::Profiler::detach();
  const auto entries = profiler.report();
  EXPECT_EQ(find_entry(entries, "prof.before"), nullptr);
  ASSERT_NE(find_entry(entries, "prof.after"), nullptr);
}

TEST(Profiler, DepthOverflowDropsScopesNotTime) {
  obs::Profiler profiler;
  profiler.attach();
  recurse(100);  // deeper than the 64-frame per-thread stack
  obs::Profiler::detach();
  EXPECT_GT(profiler.dropped_scopes(), 0);
  const auto entries = profiler.report();
  const auto* entry = find_entry(entries, "prof.recurse");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 64);  // the frames that fit
}

TEST(Profiler, ReplacingTheActiveProfilerIsolatesRuns) {
  obs::Profiler first;
  first.attach();
  {
    MOBIWEB_PROFILE_SCOPE("prof.run");
    spin(100);
  }
  obs::Profiler second;
  second.attach();  // replaces `first`; its thread logs must not be reused
  {
    MOBIWEB_PROFILE_SCOPE("prof.run");
    spin(100);
  }
  obs::Profiler::detach();
  const auto first_entries = first.report();
  const auto second_entries = second.report();
  const auto* a = find_entry(first_entries, "prof.run");
  const auto* b = find_entry(second_entries, "prof.run");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count, 1);
  EXPECT_EQ(b->count, 1);
}

TEST(Profiler, DestructorDetachesActiveProfiler) {
  {
    obs::Profiler profiler;
    profiler.attach();
    EXPECT_EQ(obs::Profiler::active(), &profiler);
  }
  EXPECT_EQ(obs::Profiler::active(), nullptr);
}

TEST(Profiler, CapturesInstrumentedParallelIdaEncode) {
  mobiweb::Rng rng(77);
  mobiweb::Bytes payload(10240);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_below(256));
  const mobiweb::ida::Encoder enc(40, 60);

  obs::Profiler profiler;
  profiler.attach();
  const std::size_t prev = mobiweb::ida::set_parallel_threshold(0);
  (void)enc.encode_payload(mobiweb::ByteSpan(payload), 256);
  mobiweb::ida::set_parallel_threshold(prev);
  obs::Profiler::detach();

  const auto entries = profiler.report();
  EXPECT_NE(find_entry(entries, "ida.encode"), nullptr);
  EXPECT_NE(find_entry(entries, "ida.rows.parallel"), nullptr);
}
