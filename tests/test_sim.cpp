// Simulation harness: synthetic documents, analytic transfers, experiments.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "sim/experiment.hpp"
#include "sim/proxied.hpp"
#include "sim/synthetic.hpp"
#include "sim/transfer.hpp"

namespace sim = mobiweb::sim;
namespace doc = mobiweb::doc;
using mobiweb::ContractViolation;
using mobiweb::Rng;

TEST(Synthetic, TableTwoDefaults) {
  const sim::SyntheticConfig cfg;
  EXPECT_EQ(cfg.paragraphs(), 20);
  EXPECT_EQ(cfg.raw_packets(), 40);
  EXPECT_EQ(cfg.doc_size, 10240u);
  EXPECT_EQ(cfg.packet_size, 256u);
  EXPECT_EQ(cfg.skew, 3.0);
}

TEST(Synthetic, ContentsNormalized) {
  Rng rng(60);
  const auto doc = sim::generate_document({}, rng);
  ASSERT_EQ(doc.paragraph_content.size(), 20u);
  const double sum = std::accumulate(doc.paragraph_content.begin(),
                                     doc.paragraph_content.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (double c : doc.paragraph_content) EXPECT_GT(c, 0.0);
}

TEST(Synthetic, SkewBoundsRatio) {
  Rng rng(61);
  sim::SyntheticConfig cfg;
  cfg.skew = 4.0;
  for (int i = 0; i < 50; ++i) {
    const auto doc = sim::generate_document(cfg, rng);
    const auto [lo, hi] = std::minmax_element(doc.paragraph_content.begin(),
                                              doc.paragraph_content.end());
    EXPECT_LE(*hi / *lo, 4.0 + 1e-9);
  }
}

TEST(Synthetic, SkewOneIsUniform) {
  Rng rng(62);
  sim::SyntheticConfig cfg;
  cfg.skew = 1.0;
  const auto doc = sim::generate_document(cfg, rng);
  for (double c : doc.paragraph_content) EXPECT_NEAR(c, 1.0 / 20.0, 1e-12);
}

TEST(Profile, SumsToOneAtEveryLod) {
  Rng rng(63);
  const auto doc = sim::generate_document({}, rng);
  for (const auto lod : {doc::Lod::kDocument, doc::Lod::kSection,
                         doc::Lod::kSubsection, doc::Lod::kParagraph}) {
    const auto profile = sim::packet_content_profile(doc, lod);
    ASSERT_EQ(profile.size(), 40u);
    const double sum = std::accumulate(profile.begin(), profile.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Profile, DocumentLodIsSequential) {
  Rng rng(64);
  const auto doc = sim::generate_document({}, rng);
  const auto profile = sim::packet_content_profile(doc, doc::Lod::kDocument);
  // 512-byte paragraphs over 256-byte packets: packet 2k and 2k+1 both carry
  // half of paragraph k, in document order.
  for (int k = 0; k < 20; ++k) {
    EXPECT_NEAR(profile[static_cast<std::size_t>(2 * k)],
                doc.paragraph_content[static_cast<std::size_t>(k)] / 2.0, 1e-12);
    EXPECT_NEAR(profile[static_cast<std::size_t>(2 * k + 1)],
                doc.paragraph_content[static_cast<std::size_t>(k)] / 2.0, 1e-12);
  }
}

TEST(Profile, ParagraphLodSortedDescending) {
  Rng rng(65);
  const auto doc = sim::generate_document({}, rng);
  const auto profile = sim::packet_content_profile(doc, doc::Lod::kParagraph);
  for (std::size_t i = 2; i < profile.size(); i += 2) {
    EXPECT_LE(profile[i], profile[i - 2] + 1e-12);
  }
}

TEST(Profile, ParagraphLodDominatesEveryPrefix) {
  // Sorting individual paragraphs descending is the greedy optimum: its
  // cumulative content dominates every other unit ordering at every prefix
  // (rearrangement inequality; packets are paragraph-aligned).
  Rng rng(66);
  for (int trial = 0; trial < 20; ++trial) {
    const auto doc = sim::generate_document({}, rng);
    const auto p_doc = sim::packet_content_profile(doc, doc::Lod::kDocument);
    const auto p_sec = sim::packet_content_profile(doc, doc::Lod::kSection);
    const auto p_sub = sim::packet_content_profile(doc, doc::Lod::kSubsection);
    const auto p_par = sim::packet_content_profile(doc, doc::Lod::kParagraph);
    double c_doc = 0, c_sec = 0, c_sub = 0, c_par = 0;
    for (std::size_t k = 0; k < p_doc.size(); ++k) {
      c_doc += p_doc[k];
      c_sec += p_sec[k];
      c_sub += p_sub[k];
      c_par += p_par[k];
      EXPECT_GE(c_par, c_sub - 1e-9);
      EXPECT_GE(c_par, c_sec - 1e-9);
      EXPECT_GE(c_par, c_doc - 1e-9);
    }
  }
}

TEST(Profile, FinerLodFrontLoadsContentOnAverage) {
  // Per-document the coarser rankings can be unlucky, but averaged over many
  // documents the cumulative content at any prefix is ordered paragraph >=
  // subsection >= section >= document (the multi-resolution property the
  // paper's Experiment #3 exploits).
  Rng rng(66);
  const int docs = 300;
  const std::size_t m = 40;
  std::vector<double> avg_doc(m, 0), avg_sec(m, 0), avg_sub(m, 0), avg_par(m, 0);
  for (int trial = 0; trial < docs; ++trial) {
    const auto doc = sim::generate_document({}, rng);
    const auto p_doc = sim::packet_content_profile(doc, doc::Lod::kDocument);
    const auto p_sec = sim::packet_content_profile(doc, doc::Lod::kSection);
    const auto p_sub = sim::packet_content_profile(doc, doc::Lod::kSubsection);
    const auto p_par = sim::packet_content_profile(doc, doc::Lod::kParagraph);
    double c_doc = 0, c_sec = 0, c_sub = 0, c_par = 0;
    for (std::size_t k = 0; k < m; ++k) {
      c_doc += p_doc[k];
      c_sec += p_sec[k];
      c_sub += p_sub[k];
      c_par += p_par[k];
      avg_doc[k] += c_doc;
      avg_sec[k] += c_sec;
      avg_sub[k] += c_sub;
      avg_par[k] += c_par;
    }
  }
  for (std::size_t k = 0; k + 1 < m; ++k) {  // final packet: all equal 1
    EXPECT_GE(avg_par[k], avg_sub[k] - 1e-9) << k;
    EXPECT_GE(avg_sub[k], avg_sec[k] - 1e-9) << k;
    EXPECT_GE(avg_sec[k], avg_doc[k] - 1e-9) << k;
  }
}

TEST(Profile, SubsubsectionFallsBackToSubsection) {
  Rng rng(67);
  const auto doc = sim::generate_document({}, rng);
  EXPECT_EQ(sim::packet_content_profile(doc, doc::Lod::kSubsubsection),
            sim::packet_content_profile(doc, doc::Lod::kSubsection));
}

namespace {
sim::TransferConfig base_config() {
  sim::TransferConfig cfg;
  cfg.m = 40;
  cfg.n = 60;
  cfg.alpha = 0.1;
  return cfg;
}

std::vector<double> uniform_content(int m) {
  return std::vector<double>(static_cast<std::size_t>(m), 1.0 / m);
}
}  // namespace

TEST(Transfer, CleanChannelExactlyMPackets) {
  auto cfg = base_config();
  cfg.alpha = 0.0;
  Rng rng(68);
  const auto r = sim::simulate_transfer(uniform_content(cfg.m), cfg, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.packets, 40);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_NEAR(r.time, 40 * cfg.time_per_packet, 1e-12);
}

TEST(Transfer, TimePerPacketMatchesPaper) {
  // 260 bytes at 19.2 kbps = 108.33 ms per cooked packet.
  const sim::TransferConfig cfg;
  EXPECT_NEAR(cfg.time_per_packet, 0.108333, 1e-4);
}

TEST(Transfer, RelevanceAbortUsesClearContent) {
  auto cfg = base_config();
  cfg.alpha = 0.0;
  cfg.relevance_threshold = 0.5;
  Rng rng(69);
  const auto r = sim::simulate_transfer(uniform_content(cfg.m), cfg, rng);
  EXPECT_TRUE(r.aborted_irrelevant);
  // Uniform content: F = 0.5 is reached exactly at packet 20.
  EXPECT_EQ(r.packets, 20);
}

TEST(Transfer, FrontLoadedContentAbortsSooner) {
  auto cfg = base_config();
  cfg.alpha = 0.0;
  cfg.relevance_threshold = 0.5;
  std::vector<double> front(40, 0.5 / 39.0);
  front[0] = 0.5;  // half the document in the first packet
  Rng rng(70);
  const auto r = sim::simulate_transfer(front, cfg, rng);
  EXPECT_EQ(r.packets, 1);
}

TEST(Transfer, StalledRoundsRetransmit) {
  auto cfg = base_config();
  cfg.n = 40;  // gamma = 1: any corruption stalls the round
  cfg.alpha = 0.2;
  cfg.caching = true;
  Rng rng(71);
  const auto r = sim::simulate_transfer(uniform_content(cfg.m), cfg, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.rounds, 1);
}

TEST(Transfer, CachingBeatsNoCachingOnAverage) {
  auto cfg = base_config();
  cfg.alpha = 0.4;
  Rng rng_a(72);
  Rng rng_b(72);
  double cached_time = 0.0;
  double uncached_time = 0.0;
  for (int i = 0; i < 400; ++i) {
    cfg.caching = true;
    cached_time += sim::simulate_transfer(uniform_content(cfg.m), cfg, rng_a).time;
    cfg.caching = false;
    uncached_time += sim::simulate_transfer(uniform_content(cfg.m), cfg, rng_b).time;
  }
  EXPECT_LT(cached_time, uncached_time);
}

TEST(Transfer, GivesUpAfterMaxRounds) {
  auto cfg = base_config();
  cfg.n = 40;
  cfg.alpha = 0.8;  // hopeless without caching
  cfg.caching = false;
  cfg.max_rounds = 5;
  Rng rng(73);
  const auto r = sim::simulate_transfer(uniform_content(cfg.m), cfg, rng);
  EXPECT_TRUE(r.gave_up);
  EXPECT_EQ(r.rounds, 5);
  EXPECT_EQ(r.packets, 5 * 40);
}

TEST(Transfer, RequestDelayCharged) {
  auto cfg = base_config();
  cfg.n = 40;
  cfg.alpha = 0.3;
  cfg.request_delay = 1.0;
  Rng rng(74);
  const auto r = sim::simulate_transfer(uniform_content(cfg.m), cfg, rng);
  ASSERT_GT(r.rounds, 1);
  const double packet_time = static_cast<double>(r.packets) * cfg.time_per_packet;
  EXPECT_NEAR(r.time - packet_time, static_cast<double>(r.rounds - 1), 1e-9);
}

TEST(Transfer, ScriptedSourceHonored) {
  auto cfg = base_config();
  cfg.n = 40;
  // Corrupt exactly the first packet of round 1; everything else intact:
  // round 1 stalls (39/40 intact), round 2 retransmits and packet 0 completes
  // the set immediately (with caching).
  int call = 0;
  const auto r = sim::simulate_transfer(
      uniform_content(cfg.m), cfg, [&call] { return call++ == 0; });
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 2);
  EXPECT_EQ(r.packets, 41);
}

TEST(Transfer, InputValidation) {
  auto cfg = base_config();
  Rng rng(75);
  EXPECT_THROW(sim::simulate_transfer(uniform_content(39), cfg, rng),
               ContractViolation);
  cfg.n = 10;  // < m
  EXPECT_THROW(sim::simulate_transfer(uniform_content(cfg.m), cfg, rng),
               ContractViolation);
}

TEST(Experiment, DefaultsMatchTableTwo) {
  const sim::ExperimentParams p;
  EXPECT_EQ(p.m(), 40);
  EXPECT_EQ(p.n(), 60);
  EXPECT_NEAR(p.time_per_packet(), 260.0 * 8.0 / 19200.0, 1e-12);
  const std::string desc = sim::describe_parameters(p);
  EXPECT_NE(desc.find("10240"), std::string::npos);
  EXPECT_NE(desc.find("19.2"), std::string::npos);
}

TEST(Experiment, ReproducibleWithSameSeed) {
  sim::ExperimentParams p;
  p.repetitions = 3;
  p.documents_per_session = 20;
  const auto a = sim::run_browsing_experiment(p);
  const auto b = sim::run_browsing_experiment(p);
  EXPECT_EQ(a.response_time.mean, b.response_time.mean);
  EXPECT_EQ(a.total_packets, b.total_packets);
}

TEST(Experiment, AllRelevantCleanChannelExactTime) {
  sim::ExperimentParams p;
  p.alpha = 0.0;
  p.irrelevant_fraction = 0.0;
  p.repetitions = 2;
  p.documents_per_session = 10;
  const auto r = sim::run_browsing_experiment(p);
  // Every document needs exactly M = 40 packets.
  EXPECT_NEAR(r.response_time.mean, 40 * p.time_per_packet(), 1e-9);
  EXPECT_EQ(r.stall_fraction, 0.0);
}

TEST(Experiment, MoreIrrelevantMeansFaster) {
  sim::ExperimentParams p;
  p.repetitions = 5;
  p.documents_per_session = 50;
  p.irrelevant_fraction = 0.0;
  const double all_relevant = sim::run_browsing_experiment(p).response_time.mean;
  p.irrelevant_fraction = 1.0;
  const double all_irrelevant = sim::run_browsing_experiment(p).response_time.mean;
  EXPECT_LT(all_irrelevant, all_relevant);
}

TEST(Experiment, HigherAlphaMeansSlower) {
  sim::ExperimentParams p;
  p.repetitions = 5;
  p.documents_per_session = 50;
  p.alpha = 0.1;
  const double low = sim::run_browsing_experiment(p).response_time.mean;
  p.alpha = 0.4;
  const double high = sim::run_browsing_experiment(p).response_time.mean;
  EXPECT_GT(high, low);
}

TEST(Experiment, ParagraphLodFasterForIrrelevant) {
  sim::ExperimentParams p;
  p.repetitions = 10;
  p.documents_per_session = 100;
  p.irrelevant_fraction = 1.0;
  p.relevance_threshold = 0.2;
  p.lod = doc::Lod::kDocument;
  const double at_doc = sim::run_browsing_experiment(p).response_time.mean;
  p.lod = doc::Lod::kParagraph;
  const double at_para = sim::run_browsing_experiment(p).response_time.mean;
  EXPECT_LT(at_para, at_doc);
}

TEST(Transfer, CompletionBeatsRelevanceAbort) {
  // Regression (mirrors the real session): the relevance threshold must not
  // swallow a transfer that completes on the same packet. Corrupt all m
  // clear-text packets; the redundancy packets complete the decode with the
  // accumulated clear content still 0.
  sim::TransferConfig cfg;
  cfg.m = 4;
  cfg.n = 8;
  cfg.relevance_threshold = 0.5;
  const std::vector<bool> pattern = {true, true, true, true,
                                     false, false, false, false};
  std::size_t pos = 0;
  const std::vector<double> content(4, 0.25);
  const auto r =
      sim::simulate_transfer(content, cfg, [&] { return pattern[pos++]; });
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.aborted_irrelevant);
  EXPECT_EQ(r.packets, 8);
  EXPECT_NEAR(r.content, 1.0, 1e-12);
}

TEST(Transfer, TraceMirrorsResult) {
  sim::TransferConfig cfg;
  cfg.m = 4;
  cfg.n = 6;
  cfg.max_rounds = 10;
  cfg.request_delay = 0.5;
  mobiweb::obs::SessionTrace trace;
  trace.capture_events(true);
  cfg.trace = &trace;
  // Round 1 all corrupted, round 2 clean: completes on its 4th packet.
  const std::vector<bool> pattern = {true, true, true, true, true, true,
                                     false, false, false, false};
  std::size_t pos = 0;
  const std::vector<double> content(4, 0.25);
  const auto r =
      sim::simulate_transfer(content, cfg, [&] { return pattern[pos++]; });
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.rounds, 2);
  ASSERT_EQ(trace.rounds().size(), 2u);
  EXPECT_EQ(trace.rounds()[0].frames_sent, 6);
  EXPECT_EQ(trace.rounds()[0].frames_corrupted, 6);
  EXPECT_EQ(trace.rounds()[1].frames_intact, 4);
  EXPECT_TRUE(trace.completed());
  EXPECT_FALSE(trace.gave_up());
  EXPECT_EQ(trace.frames_sent(), r.packets);
  EXPECT_NEAR(trace.response_time(), r.time, 1e-9);
  EXPECT_NEAR(trace.final_content(), r.content, 1e-12);
}

TEST(Experiment, BurstStateResetsBetweenDocuments) {
  // A Gilbert-Elliott channel with a near-absorbing bad state: once a
  // transfer falls into the burst it never gets out, so that document gives
  // up. The runner must reset() the model between documents — without the
  // reset the first burst would poison every later document of the session
  // and the gave-up fraction would approach 1.
  const mobiweb::channel::GilbertElliottModel model(0.01, 1e-9, 0.0, 1.0);
  sim::ExperimentParams p;
  p.repetitions = 3;
  p.documents_per_session = 30;
  p.irrelevant_fraction = 0.0;
  p.max_rounds = 5;
  p.error_model = &model;
  const auto r = sim::run_browsing_experiment(p);
  EXPECT_GT(r.gave_up_fraction, 0.0);   // some documents do hit a burst
  EXPECT_LT(r.gave_up_fraction, 0.9);   // ...but bursts don't leak across docs
}

TEST(Experiment, ErrorModelDefaultsEquivalentToAlpha) {
  // An explicit iid model must reproduce the built-in alpha path draw for
  // draw (same rng stream, same decisions).
  sim::ExperimentParams p;
  p.repetitions = 2;
  p.documents_per_session = 20;
  p.alpha = 0.3;
  const auto builtin = sim::run_browsing_experiment(p);
  const mobiweb::channel::IidErrorModel iid(0.3);
  p.error_model = &iid;
  const auto external = sim::run_browsing_experiment(p);
  EXPECT_EQ(builtin.total_packets, external.total_packets);
  EXPECT_EQ(builtin.response_time.mean, external.response_time.mean);
}

TEST(Experiment, MetricsAggregateEveryDocument) {
  sim::ExperimentParams p;
  p.repetitions = 2;
  p.documents_per_session = 10;
  p.alpha = 0.0;
  p.irrelevant_fraction = 0.0;
  mobiweb::obs::MetricsRegistry registry;
  p.metrics = &registry;
  const auto r = sim::run_browsing_experiment(p);
  EXPECT_EQ(registry.counter("session.count").value(), 20);
  EXPECT_EQ(registry.counter("session.completed").value(), 20);
  EXPECT_EQ(registry.counter("session.gave_up").value(), 0);
  EXPECT_EQ(registry.counter("frames.sent").value(), r.total_packets);
  EXPECT_EQ(registry.counter("frames.corrupted").value(), 0);
  const auto* hist = registry.find_histogram("session.response_time_s");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 20);
  EXPECT_NEAR(hist->sum() / 20.0, r.response_time.mean, 1e-9);
}

// ---- Resilient oracle (simulate_resilient_transfer) ----

namespace {
sim::ResilientTransferConfig resilient_config() {
  sim::ResilientTransferConfig cfg;
  cfg.base = base_config();
  cfg.base.request_delay = 1.0;
  cfg.retry.jitter = 0.1;
  return cfg;
}
}  // namespace

TEST(ResilientTransfer, MatchesPlainTransferWhenLinkAlwaysUp) {
  // With no link_up hook, reliable feedback, and a retry budget that can
  // never bind (one attempt per stalled round, at most max_rounds - 1 of
  // them), the resilient walk degenerates to simulate_transfer bit-for-bit.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::ResilientTransferConfig cfg = resilient_config();
    cfg.base.alpha = 0.35;
    cfg.retry.retry_budget = cfg.base.max_rounds;
    Rng a(seed);
    Rng b(seed);
    const auto plain = sim::simulate_transfer(uniform_content(cfg.base.m),
                                              cfg.base, a);
    const auto resilient = sim::simulate_resilient_transfer(
        uniform_content(cfg.base.m), cfg, b);
    EXPECT_EQ(resilient.packets, plain.packets);
    EXPECT_EQ(resilient.rounds, plain.rounds);
    EXPECT_EQ(resilient.completed, plain.completed);
    EXPECT_EQ(resilient.aborted_irrelevant, plain.aborted_irrelevant);
    EXPECT_EQ(resilient.gave_up, plain.gave_up);
    EXPECT_EQ(resilient.content, plain.content);  // bit-equal
    EXPECT_EQ(resilient.time, plain.time);
    EXPECT_FALSE(resilient.degraded);
    EXPECT_EQ(resilient.suspensions, 0);
    EXPECT_EQ(resilient.frames_lost, 0);
    EXPECT_EQ(resilient.backoff_s, 0.0);
  }
}

TEST(ResilientTransfer, SuspendsAcrossAFadeAndResumes) {
  sim::ResilientTransferConfig cfg = resilient_config();
  cfg.base.alpha = 0.0;
  // Fade covering the tail of round 1 and the stall after it: round 1 cannot
  // reconstruct (its tail is lost), and the round ends inside the fade, so
  // the client suspends and backs off until t >= 20.
  cfg.base.link_up = [](double t) { return !(t >= 3.0 && t < 20.0); };
  Rng rng(404);
  const auto r = sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                  cfg, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.rounds, 2);
  EXPECT_EQ(r.suspensions, 1);
  EXPECT_GT(r.frames_lost, 0);
  EXPECT_GT(r.backoff_s, 0.0);
  // Suspension attempts plus one successful re-request, all on the budget.
  EXPECT_GT(r.request_attempts, 1);
  EXPECT_LE(r.request_attempts, cfg.retry.retry_budget);
  // Backoff waits are charged to the transfer time like any other stall.
  EXPECT_NEAR(r.time, r.packets * cfg.base.time_per_packet + r.backoff_s +
                          cfg.base.request_delay,
              1e-9);
}

TEST(ResilientTransfer, DegradesWhenTheLinkNeverReturns) {
  sim::ResilientTransferConfig cfg = resilient_config();
  cfg.base.alpha = 0.0;
  cfg.base.link_up = [](double) { return false; };
  cfg.retry.retry_budget = 6;
  Rng rng(405);
  const auto r = sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                  cfg, rng);
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.gave_up);
  EXPECT_EQ(r.rounds, 1);                 // one all-lost round, then suspended
  EXPECT_EQ(r.frames_lost, r.packets);    // every frame fell into the fade
  EXPECT_EQ(r.request_attempts, 6);       // full budget burned backing off
  EXPECT_EQ(r.suspensions, 0);            // never saw the link come back
  EXPECT_EQ(r.content, 0.0);
  EXPECT_GT(r.backoff_s, 0.0);
}

TEST(ResilientTransfer, DeadlineExhaustionDegrades) {
  sim::ResilientTransferConfig cfg = resilient_config();
  cfg.base.alpha = 0.0;
  cfg.base.link_up = [](double t) { return t < 3.0; };  // dies and stays dead
  cfg.retry.retry_budget = 1000000;
  cfg.retry.deadline_s = 30.0;
  Rng rng(406);
  const auto r = sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                  cfg, rng);
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.content, 0.0);  // partial-content accounting survives
  EXPECT_LT(r.content, 1.0);
  EXPECT_LT(r.request_attempts, 1000);  // deadline bound it, not the budget
}

TEST(ResilientTransfer, LossyFeedbackConsumesBudgetWithBackoff) {
  sim::ResilientTransferConfig cfg = resilient_config();
  cfg.base.alpha = 0.9;  // stall every round
  cfg.base.max_rounds = 10;
  cfg.retry.retry_budget = 4;
  int calls = 0;
  cfg.base.feedback_lost = [&calls] {
    ++calls;
    return true;  // the back channel never delivers
  };
  Rng rng(407);
  const auto r = sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                  cfg, rng);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.request_attempts, 4);
  EXPECT_EQ(calls, 4);
  EXPECT_GT(r.backoff_s, 0.0);
}

TEST(ResilientTransfer, GivesUpAtTheRoundCapBeforeTouchingTheBackChannel) {
  sim::ResilientTransferConfig cfg = resilient_config();
  cfg.base.alpha = 0.9;
  cfg.base.max_rounds = 3;
  cfg.retry.retry_budget = 2;  // two stalled rounds fit exactly
  Rng rng(408);
  const auto r = sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                  cfg, rng);
  // Rounds 1 and 2 each consume one attempt; round 3 hits the cap and gives
  // up without another request, so the budget never trips.
  EXPECT_TRUE(r.gave_up);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.rounds, 3);
  EXPECT_EQ(r.request_attempts, 2);
}

TEST(ResilientTransfer, InputValidation) {
  Rng rng(409);
  sim::ResilientTransferConfig cfg = resilient_config();
  cfg.retry.retry_budget = 0;
  EXPECT_THROW(sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                cfg, rng),
               ContractViolation);
  cfg = resilient_config();
  cfg.retry.backoff_multiplier = 0.5;
  EXPECT_THROW(sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                cfg, rng),
               ContractViolation);
  cfg = resilient_config();
  cfg.retry.max_backoff_s = cfg.retry.initial_timeout_s / 2.0;
  EXPECT_THROW(sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                cfg, rng),
               ContractViolation);
  cfg = resilient_config();
  cfg.retry.jitter = -0.1;
  EXPECT_THROW(sim::simulate_resilient_transfer(uniform_content(cfg.base.m),
                                                cfg, rng),
               ContractViolation);
}

// ---- Proxied oracle (simulate_proxied_transfer) ----

namespace {
// warm_hit = 1, a static corpus, no handoffs, no origin_up hook: the edge
// tier is transparent — always a current replica, never a charge.
sim::ProxiedTransferConfig transparent_proxy_config() {
  sim::ProxiedTransferConfig cfg;
  cfg.base = base_config();
  cfg.base.request_delay = 1.0;
  cfg.retry.jitter = 0.1;
  cfg.proxy.warm_hit = 1.0;
  cfg.proxy.update_interval_s = 0.0;
  cfg.proxy.handoff_rate = 0.0;
  return cfg;
}
}  // namespace

TEST(ProxiedTransfer, GenerationAdvancesOncePerInterval) {
  EXPECT_EQ(sim::generation_at(123.0, 0.0), 0u);   // static corpus
  EXPECT_EQ(sim::generation_at(-5.0, 10.0), 0u);   // pre-session times clamp
  EXPECT_EQ(sim::generation_at(0.0, 10.0), 0u);
  EXPECT_EQ(sim::generation_at(9.999, 10.0), 0u);
  EXPECT_EQ(sim::generation_at(10.0, 10.0), 1u);
  EXPECT_EQ(sim::generation_at(35.0, 10.0), 3u);
  std::uint64_t prev = 0;
  for (double t = 0.0; t < 100.0; t += 1.7) {  // monotone in time
    const std::uint64_t g = sim::generation_at(t, 4.0);
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(ProxiedTransfer, TransparentProxyMatchesResilientTransfer) {
  // The anchor pinning the proxied oracle to the resilient one: with a
  // transparent edge tier the walk must be bit-identical under the same link
  // fades — the proxy/warm/handoff draws live on their own RNG stream and
  // cannot perturb the corruption or jitter sequences.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::ProxiedTransferConfig pc = transparent_proxy_config();
    pc.base.alpha = 0.3;
    pc.base.link_up = [](double t) { return !(t >= 3.0 && t < 20.0); };
    sim::ResilientTransferConfig rc;
    rc.base = pc.base;
    rc.retry = pc.retry;
    rc.jitter_seed = pc.jitter_seed;
    Rng a(seed);
    Rng b(seed);
    const auto proxied =
        sim::simulate_proxied_transfer(uniform_content(pc.base.m), pc, a);
    const auto resilient =
        sim::simulate_resilient_transfer(uniform_content(rc.base.m), rc, b);
    EXPECT_EQ(proxied.transfer.packets, resilient.packets);
    EXPECT_EQ(proxied.transfer.rounds, resilient.rounds);
    EXPECT_EQ(proxied.transfer.completed, resilient.completed);
    EXPECT_EQ(proxied.transfer.aborted_irrelevant, resilient.aborted_irrelevant);
    EXPECT_EQ(proxied.transfer.gave_up, resilient.gave_up);
    EXPECT_EQ(proxied.transfer.degraded, resilient.degraded);
    EXPECT_EQ(proxied.transfer.content, resilient.content);  // bit-equal
    EXPECT_EQ(proxied.transfer.time, resilient.time);
    EXPECT_EQ(proxied.transfer.frames_lost, resilient.frames_lost);
    EXPECT_EQ(proxied.transfer.suspensions, resilient.suspensions);
    EXPECT_EQ(proxied.transfer.request_attempts, resilient.request_attempts);
    EXPECT_EQ(proxied.transfer.backoff_s, resilient.backoff_s);
    // Transparent-tier accounting: the initial attach is a hit, every resume
    // revalidates (hit) and reconciles; nothing is ever stale or refetched.
    EXPECT_EQ(proxied.proxy.replica_hits, 1 + resilient.suspensions);
    EXPECT_EQ(proxied.proxy.reconciliations, resilient.suspensions);
    EXPECT_EQ(proxied.proxy.origin_fetches, 0);
    EXPECT_EQ(proxied.proxy.stale_serves, 0);
    EXPECT_EQ(proxied.proxy.failovers, 0);
    EXPECT_EQ(proxied.proxy.handoffs, 0);
    EXPECT_EQ(proxied.proxy.origin_suspensions, 0);
    EXPECT_EQ(proxied.proxy.packets_refetched, 0);
    EXPECT_EQ(proxied.proxy.stale_frames, 0);
    EXPECT_FALSE(proxied.proxy.ended_stale);
  }
}

TEST(ProxiedTransfer, StaleFramesAreFlaggedDuringAnOriginFade) {
  // Origin down for the whole session, replica warm and current at attach:
  // every serving is a flagged stale failover and every intact frame counts
  // as a stale frame — the "never serve stale as fresh" ledger.
  sim::ProxiedTransferConfig cfg = transparent_proxy_config();
  cfg.base.alpha = 0.0;
  cfg.proxy.replica_age_mean_s = 0.0;  // replica current at attach
  cfg.origin_up = [](double) { return false; };
  Rng rng(7);
  const auto r =
      sim::simulate_proxied_transfer(uniform_content(cfg.base.m), cfg, rng);
  EXPECT_TRUE(r.transfer.completed);
  EXPECT_EQ(r.proxy.failovers, 1);
  EXPECT_EQ(r.proxy.stale_serves, 1);
  EXPECT_EQ(r.proxy.stale_frames, static_cast<long>(cfg.base.m));
  EXPECT_TRUE(r.proxy.ended_stale);
  EXPECT_EQ(r.proxy.origin_fetches, 0);
}

TEST(ProxiedTransfer, ColdProxyAndDeadOriginDegradeOnTheBudget) {
  // Nothing cached and nothing reachable: the origin-fade suspend loop must
  // drain the retry budget and terminate degraded with zero content, before
  // a single frame is sent.
  sim::ProxiedTransferConfig cfg = transparent_proxy_config();
  cfg.proxy.warm_hit = 0.0;
  cfg.origin_up = [](double) { return false; };
  cfg.retry.retry_budget = 5;
  Rng rng(8);
  const auto r =
      sim::simulate_proxied_transfer(uniform_content(cfg.base.m), cfg, rng);
  EXPECT_TRUE(r.transfer.degraded);
  EXPECT_EQ(r.transfer.packets, 0);
  EXPECT_EQ(r.transfer.request_attempts, 5);
  EXPECT_EQ(r.transfer.content, 0.0);
  EXPECT_GT(r.transfer.backoff_s, 0.0);
  EXPECT_EQ(r.proxy.origin_suspensions, 0);  // the origin never came back
  EXPECT_EQ(r.proxy.failovers, 1);
}

TEST(ProxiedTransfer, InputValidation) {
  Rng rng(9);
  sim::ProxiedTransferConfig cfg = transparent_proxy_config();
  cfg.proxy.warm_hit = 1.5;
  EXPECT_THROW(
      sim::simulate_proxied_transfer(uniform_content(cfg.base.m), cfg, rng),
      ContractViolation);
  cfg = transparent_proxy_config();
  cfg.proxy.handoff_rate = 1.0;  // must be < 1: a.s. infinite handoffs
  EXPECT_THROW(
      sim::simulate_proxied_transfer(uniform_content(cfg.base.m), cfg, rng),
      ContractViolation);
  cfg = transparent_proxy_config();
  cfg.proxy.origin_fetch_delay_s = -1.0;
  EXPECT_THROW(
      sim::simulate_proxied_transfer(uniform_content(cfg.base.m), cfg, rng),
      ContractViolation);
  cfg = transparent_proxy_config();
  cfg.proxy.proxies = 0;
  EXPECT_THROW(
      sim::simulate_proxied_transfer(uniform_content(cfg.base.m), cfg, rng),
      ContractViolation);
}
