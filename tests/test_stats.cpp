// Statistical experiment engine: exact order statistics, the P-squared
// streaming quantile estimator and its documented error bound, Student-t
// confidence intervals, Jarque-Bera normality, chi-square goodness of fit,
// the dispersion test, and least-squares regression. Every random draw is
// seeded, so nothing here can flake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/describe.hpp"
#include "stats/inference.hpp"
#include "stats/quantile.hpp"
#include "stats/regress.hpp"
#include "stats/slo.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stats = mobiweb::stats;
using mobiweb::ContractViolation;
using mobiweb::Rng;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<double> uniform_draws(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.next_double();
  return out;
}

std::vector<double> exponential_draws(std::size_t n, double rate,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = -std::log(1.0 - rng.next_double()) / rate;
  return out;
}

// Discrete Zipf(s) ranks over `support` values via cumulative weights —
// the same shape the fleet's popularity sampler draws from.
std::vector<double> zipf_draws(std::size_t n, double s, std::size_t support,
                               std::uint64_t seed) {
  std::vector<double> cum;
  cum.reserve(support);
  double acc = 0.0;
  for (std::size_t r = 0; r < support; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cum.push_back(acc);
  }
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) {
    const double u = rng.next_double() * cum.back();
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    v = static_cast<double>(it - cum.begin());
  }
  return out;
}

// The documented StreamingQuantiles contract: the estimate of q lies within
// the closed envelope of exact sample quantiles [q - kRankError,
// q + kRankError] (see stats/quantile.hpp).
void expect_within_rank_envelope(const std::vector<double>& samples,
                                 const stats::StreamingQuantiles& sq,
                                 double q, const char* label) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double d = stats::StreamingQuantiles::kRankError;
  const double lo = stats::exact_quantile_sorted(sorted, q - d);
  const double hi = stats::exact_quantile_sorted(sorted, q + d);
  const double est = sq.quantile(q);
  EXPECT_GE(est, lo) << label << " q=" << q;
  EXPECT_LE(est, hi) << label << " q=" << q;
}

}  // namespace

// ---------------------------------------------------------------- exact

TEST(ExactQuantile, PinnedOrderStatistics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_TRUE(std::isnan(stats::exact_quantile({}, 0.5)));
  EXPECT_DOUBLE_EQ(stats::exact_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::exact_quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(stats::exact_quantile(v, 1.0), 5.0);
  // Type-7 interpolation: h = 0.25 * 4 = 1 exactly.
  EXPECT_DOUBLE_EQ(stats::exact_quantile(v, 0.25), 2.0);
  // h = 0.1 * 4 = 0.4 between the first two order statistics.
  EXPECT_NEAR(stats::exact_quantile(v, 0.1), 1.4, 1e-12);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(stats::exact_quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::exact_quantile(v, 2.0), 5.0);
}

TEST(ExactQuantile, DropsNaNsBeforeSorting) {
  EXPECT_DOUBLE_EQ(stats::exact_quantile({kNan, 2.0, 1.0, kNan, 3.0}, 0.5),
                   2.0);
}

// ------------------------------------------------------------- streaming

TEST(StreamingQuantiles, ExactWithinRetainedWindow) {
  stats::StreamingQuantiles sq;
  std::vector<double> samples;
  Rng rng(7);
  for (std::size_t i = 0; i < stats::StreamingQuantiles::kExactWindow; ++i) {
    const double v = rng.next_range(-50.0, 50.0);
    samples.push_back(v);
    ASSERT_TRUE(sq.add(v));
  }
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(sq.quantile(q), stats::exact_quantile(samples, q))
        << "q=" << q;
  }
}

TEST(StreamingQuantiles, WithinDocumentedBoundOnUniform) {
  const auto samples = uniform_draws(20000, 0x5eed0001);
  stats::StreamingQuantiles sq;
  for (double v : samples) sq.add(v);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    expect_within_rank_envelope(samples, sq, q, "uniform");
  }
}

TEST(StreamingQuantiles, WithinDocumentedBoundOnExponential) {
  const auto samples = exponential_draws(20000, 0.25, 0x5eed0002);
  stats::StreamingQuantiles sq;
  for (double v : samples) sq.add(v);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    expect_within_rank_envelope(samples, sq, q, "exponential");
  }
}

TEST(StreamingQuantiles, WithinDocumentedBoundOnZipf) {
  const auto samples = zipf_draws(20000, 1.1, 64, 0x5eed0003);
  stats::StreamingQuantiles sq;
  for (double v : samples) sq.add(v);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    expect_within_rank_envelope(samples, sq, q, "zipf");
  }
}

TEST(StreamingQuantiles, SummaryMatchesExactSummaryOnLargeStream) {
  const auto samples = exponential_draws(50000, 1.0, 0x5eed0004);
  stats::StreamingQuantiles sq;
  for (double v : samples) sq.add(v);
  const stats::TailSummary streamed = sq.summary();
  const stats::TailSummary exact = stats::summarize_tails(samples);
  EXPECT_EQ(streamed.count, exact.count);
  EXPECT_NEAR(streamed.mean, exact.mean, 1e-9);
  EXPECT_NEAR(streamed.stddev, exact.stddev, 1e-9);
  EXPECT_NEAR(streamed.ci95, exact.ci95, 1e-9);
  EXPECT_DOUBLE_EQ(streamed.min, exact.min);
  EXPECT_DOUBLE_EQ(streamed.max, exact.max);
  // Quantiles: within the rank envelope, checked per distribution above;
  // here just sanity-pin the ordering of the streamed set.
  EXPECT_LE(streamed.p50, streamed.p95);
  EXPECT_LE(streamed.p95, streamed.p99);
  EXPECT_LE(streamed.p99, streamed.p999);
}

TEST(StreamingQuantiles, DegenerateInputsPinned) {
  stats::StreamingQuantiles sq;
  // n = 0: every quantile is NaN, the summary is zeroed with count 0.
  EXPECT_TRUE(std::isnan(sq.quantile(0.5)));
  EXPECT_EQ(sq.summary().count, 0u);

  // NaN is rejected without mutating state.
  EXPECT_FALSE(sq.add(kNan));
  EXPECT_EQ(sq.count(), 0u);

  // n = 1: every quantile answers the single sample.
  ASSERT_TRUE(sq.add(3.25));
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(sq.quantile(q), 3.25);
  }
  const stats::TailSummary one = sq.summary();
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 3.25);
  EXPECT_DOUBLE_EQ(one.ci95, 0.0);  // undefined below two samples
}

TEST(StreamingQuantiles, AllEqualStreamIsExactEverywhere) {
  stats::StreamingQuantiles sq;
  for (int i = 0; i < 10000; ++i) sq.add(42.0);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(sq.quantile(q), 42.0);
  }
  const stats::TailSummary s = sq.summary();
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p999, 42.0);
}

TEST(P2Quantile, RejectsNaNAndBadQuantile) {
  EXPECT_THROW(stats::P2Quantile(0.0), ContractViolation);
  EXPECT_THROW(stats::P2Quantile(1.0), ContractViolation);
  stats::P2Quantile p(0.5);
  EXPECT_FALSE(p.add(kNan));
  EXPECT_EQ(p.count(), 0u);
  EXPECT_TRUE(std::isnan(p.value()));
  // Exact for n <= 5 (the marker warm-up keeps raw samples).
  for (double v : {5.0, 1.0, 3.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
}

// ------------------------------------------------------------- describe

TEST(Moments, MatchesClosedFormsOnKnownData) {
  stats::Moments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  // Population skewness of this classic set is 0.656...; pin loosely
  // against the direct two-pass computation.
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    const double d = v - 5.0;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= 8.0;
  m3 /= 8.0;
  m4 /= 8.0;
  EXPECT_NEAR(m.skewness(), m3 / std::pow(m2, 1.5), 1e-12);
  EXPECT_NEAR(m.kurtosis_excess(), m4 / (m2 * m2) - 3.0, 1e-12);
}

TEST(Moments, RejectsNaNAndMerges) {
  stats::Moments a;
  EXPECT_FALSE(a.add(kNan));
  EXPECT_EQ(a.count(), 0u);
  stats::Moments b;
  stats::Moments whole;
  const auto samples = uniform_draws(2000, 0x5eed0005);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i < 700 ? a : b).add(samples[i]);
    whole.add(samples[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), whole.skewness(), 1e-9);
  EXPECT_NEAR(a.kurtosis_excess(), whole.kurtosis_excess(), 1e-9);
}

TEST(TailSummary, ExactSummaryIsOrderInvariant) {
  auto samples = exponential_draws(5000, 2.0, 0x5eed0006);
  const stats::TailSummary forward = stats::summarize_tails(samples);
  std::reverse(samples.begin(), samples.end());
  const stats::TailSummary backward = stats::summarize_tails(samples);
  EXPECT_DOUBLE_EQ(forward.mean, backward.mean);
  EXPECT_DOUBLE_EQ(forward.stddev, backward.stddev);
  EXPECT_DOUBLE_EQ(forward.p99, backward.p99);
  EXPECT_DOUBLE_EQ(forward.p999, backward.p999);
  EXPECT_DOUBLE_EQ(forward.ci95, backward.ci95);
}

// ------------------------------------------------------------- inference

TEST(SpecialFunctions, PinnedReferenceValues) {
  // Chi-square survival at textbook critical points.
  EXPECT_NEAR(stats::chi_square_sf(3.841, 1.0), 0.05, 5e-4);
  EXPECT_NEAR(stats::chi_square_sf(5.991, 2.0), 0.05, 5e-4);
  EXPECT_NEAR(stats::chi_square_sf(18.307, 10.0), 0.05, 5e-4);
  EXPECT_DOUBLE_EQ(stats::chi_square_sf(0.0, 5.0), 1.0);
  // Incomplete beta / gamma basics.
  EXPECT_NEAR(stats::incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(stats::gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(stats::gamma_q(0.5, 2.0), 0.0455, 5e-4);  // = erfc(sqrt(2))
}

TEST(StudentT, CdfAndCriticalValues) {
  EXPECT_DOUBLE_EQ(stats::student_t_cdf(0.0, 7.0), 0.5);
  // t = 1, df = 1 is the Cauchy distribution: CDF = 3/4.
  EXPECT_NEAR(stats::student_t_cdf(1.0, 1.0), 0.75, 1e-10);
  // Textbook two-sided 95% critical values.
  EXPECT_NEAR(stats::t_critical(1.0), 12.706, 5e-3);
  EXPECT_NEAR(stats::t_critical(10.0), 2.228, 5e-3);
  EXPECT_NEAR(stats::t_critical(30.0), 2.042, 5e-3);
  EXPECT_NEAR(stats::t_critical(1e6), 1.960, 5e-3);  // -> normal quantile
  // 99% widens the interval.
  EXPECT_NEAR(stats::t_critical(10.0, 0.99), 3.169, 5e-3);
  EXPECT_THROW(stats::t_critical(0.5), ContractViolation);
  EXPECT_THROW(stats::t_critical(10.0, 1.0), ContractViolation);
}

TEST(MeanCi, StudentTWidthShrinksWithN) {
  // Half-width = t* s / sqrt(n); pinned for s = 1.
  EXPECT_NEAR(stats::mean_ci95_halfwidth(2, 1.0), 12.706 / std::sqrt(2.0),
              5e-3);
  EXPECT_NEAR(stats::mean_ci95_halfwidth(101, 1.0),
              1.984 / std::sqrt(101.0), 1e-3);
  EXPECT_DOUBLE_EQ(stats::mean_ci95_halfwidth(1, 1.0), 0.0);
  EXPECT_GT(stats::mean_ci95_halfwidth(10, 1.0),
            stats::mean_ci95_halfwidth(1000, 1.0));
}

TEST(JarqueBera, AcceptsNormalRejectsExponential) {
  // Exact normal draws via Box-Muller (Irwin-Hall's excess kurtosis of
  // -0.1 is detectable at this sample size — JB is that sensitive).
  Rng rng(0x5eed0007);
  stats::Moments normal;
  for (int i = 0; i < 2000; ++i) {
    const double r = std::sqrt(-2.0 * std::log(1.0 - rng.next_double()));
    const double theta = 2.0 * 3.14159265358979323846 * rng.next_double();
    normal.add(r * std::cos(theta));
    normal.add(r * std::sin(theta));
  }
  const stats::TestResult accept = stats::jarque_bera(normal);
  EXPECT_GT(accept.p_value, 0.01);

  stats::Moments expo;
  for (double v : exponential_draws(4000, 1.0, 0x5eed0008)) expo.add(v);
  const stats::TestResult reject = stats::jarque_bera(expo);
  EXPECT_LT(reject.p_value, 1e-6);
  EXPECT_GT(reject.statistic, accept.statistic);

  // Too few samples: degenerates to "never reject".
  stats::Moments tiny;
  for (double v : {1.0, 2.0, 9.0}) tiny.add(v);
  EXPECT_DOUBLE_EQ(stats::jarque_bera(tiny).p_value, 1.0);
}

TEST(ChiSquareGof, AcceptsMatchingRejectsSkewedCounts) {
  // A fair six-sided sample, drawn from the uniform weights themselves.
  Rng rng(0x5eed0009);
  std::vector<long> counts(6, 0);
  for (int i = 0; i < 6000; ++i) ++counts[rng.next_below(6)];
  const std::vector<double> fair(6, 1.0);
  const stats::TestResult accept = stats::chi_square_gof(counts, fair);
  EXPECT_DOUBLE_EQ(accept.df, 5.0);
  EXPECT_GT(accept.p_value, 0.01);

  // The same counts against a loaded die must reject hard.
  const std::vector<double> loaded = {5.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const stats::TestResult reject = stats::chi_square_gof(counts, loaded);
  EXPECT_LT(reject.p_value, 1e-10);

  EXPECT_THROW(stats::chi_square_gof({1}, {1.0}), ContractViolation);
  EXPECT_THROW(stats::chi_square_gof({1, 2}, {1.0}), ContractViolation);
  EXPECT_THROW(stats::chi_square_gof({1, 2}, {1.0, -1.0}), ContractViolation);
}

TEST(ChiSquareGof, PoolsSparseTailBins) {
  // Heavy head, long sparse tail: expected counts in the tail fall below 5,
  // so the test must pool bins (df shrinks) instead of exploding.
  std::vector<double> weights;
  std::vector<long> observed;
  weights.push_back(1000.0);
  observed.push_back(1000);
  for (int i = 0; i < 20; ++i) {
    weights.push_back(0.1);
    observed.push_back(i % 2);
  }
  const stats::TestResult r = stats::chi_square_gof(observed, weights);
  EXPECT_LT(r.df, 20.0);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(DispersionTest, PoissonCountsPassRegularAndBurstyFail) {
  // Poisson window counts synthesized by thinning exponential gaps: count
  // arrivals of a rate-100 process in unit windows.
  Rng rng(0x5eed000a);
  std::vector<long> counts(200, 0);
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.next_double()) / 100.0;
    const auto w = static_cast<std::size_t>(t);
    if (w >= counts.size()) break;
    ++counts[w];
  }
  EXPECT_NEAR(stats::dispersion_index(counts), 1.0, 0.25);
  EXPECT_GT(stats::dispersion_test(counts).p_value, 0.01);

  // Deterministic (underdispersed) counts: variance 0, must reject.
  const std::vector<long> regular(100, 7);
  EXPECT_LT(stats::dispersion_test(regular).p_value, 1e-10);

  // Bursty (overdispersed) counts: alternating famine and feast.
  std::vector<long> bursty(100);
  for (std::size_t i = 0; i < bursty.size(); ++i) {
    bursty[i] = (i % 2 == 0) ? 0 : 14;
  }
  EXPECT_LT(stats::dispersion_test(bursty).p_value, 1e-10);
}

// ------------------------------------------------------------ regression

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const stats::LinearFit fit = stats::fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.residual_stddev, 0.0, 1e-9);
  EXPECT_NEAR(fit.at(10.0), 24.0, 1e-9);
}

TEST(LinearFit, CiCoversTrueSlopeOnNoisyData) {
  Rng rng(0x5eed000b);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    xs.push_back(x);
    ys.push_back(0.75 * x + 3.0 + rng.next_range(-0.5, 0.5));
  }
  const stats::LinearFit fit = stats::fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.75, 0.05);
  EXPECT_GT(fit.slope_ci95, 0.0);
  EXPECT_LE(std::fabs(fit.slope - 0.75), 3.0 * fit.slope_ci95);
  EXPECT_GT(fit.r2, 0.95);
}

TEST(LinearFit, SkipsNaNPairsAndRejectsDegenerateInputs) {
  const stats::LinearFit fit = stats::fit_linear(
      {0.0, kNan, 1.0, 2.0, 3.0}, {1.0, 99.0, 2.0, kNan, 4.0});
  EXPECT_EQ(fit.count, 3u);  // (0,1), (1,2), (3,4)
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_THROW(stats::fit_linear({1.0}, {1.0}), ContractViolation);
  EXPECT_THROW(stats::fit_linear({1.0, 2.0}, {1.0}), ContractViolation);
  EXPECT_THROW(stats::fit_linear({2.0, 2.0}, {1.0, 5.0}), ContractViolation);
}

// Regression fits the paper's §5 shapes end-to-end: redundancy ratio vs
// alpha is increasing, and session time vs duty cycle is increasing — both
// with slopes distinguishable from zero at 95%.
TEST(LinearFit, DetectsMonotoneTrendInSweepShapedData) {
  Rng rng(0x5eed000c);
  std::vector<double> duty;
  std::vector<double> time_s;
  for (int rep = 0; rep < 10; ++rep) {
    for (double d : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      duty.push_back(d);
      time_s.push_back(20.0 + 45.0 * d + rng.next_range(-2.0, 2.0));
    }
  }
  const stats::LinearFit fit = stats::fit_linear(duty, time_s);
  EXPECT_GT(fit.slope - fit.slope_ci95, 0.0)
      << "slope CI must exclude zero for a real trend";
  EXPECT_NEAR(fit.slope, 45.0, 10.0);
}

// ---- SLO burn engine (evaluate_slo_series) --------------------------------
//
// The gate's contract, pinned as unit shapes: a flat-but-noisy series must
// PASS, a genuine mid-run regression must FAIL, a drift in the *good*
// direction or on an informational series must never breach, and too few
// buckets must never be "significant". The wobble is deterministic
// (sinusoid), so nothing here can flake.

namespace {

std::vector<double> flat_series(std::size_t n, double level) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = level + 0.002 * std::sin(1.7 * static_cast<double>(i));
  }
  return out;
}

// Flat first half, linear burn to +ramp over the second half — the
// cache-cliff shape an end-of-run mean averages away.
std::vector<double> mid_run_regression(std::size_t n, double level,
                                       double ramp) {
  std::vector<double> out = flat_series(n, level);
  for (std::size_t i = n / 2; i < n; ++i) {
    out[i] += ramp * static_cast<double>(i - n / 2) /
              static_cast<double>(n - n / 2);
  }
  return out;
}

}  // namespace

TEST(SloSeries, FlatSeriesPasses) {
  const stats::SloSeries v = stats::evaluate_slo_series(
      "link_loss_fraction", flat_series(40, 0.3), -1, 0.5);
  EXPECT_EQ(v.name, "link_loss_fraction");
  EXPECT_EQ(v.buckets, 40u);
  EXPECT_EQ(v.window, 40u);
  EXPECT_FALSE(v.breach);
  EXPECT_NEAR(v.summary.mean, 0.3, 0.01);
}

TEST(SloSeries, MidRunRegressionBreaches) {
  const stats::SloSeries v = stats::evaluate_slo_series(
      "link_loss_fraction", mid_run_regression(40, 0.2, 0.4), -1, 0.5);
  EXPECT_TRUE(v.significant);
  EXPECT_GT(v.drift, v.tolerance);
  EXPECT_TRUE(v.breach);
}

TEST(SloSeries, DriftInTheGoodDirectionNeverBreaches) {
  // The same upward burn is an improvement for a higher-is-better series.
  const stats::SloSeries v = stats::evaluate_slo_series(
      "origin_up_fraction", mid_run_regression(40, 0.2, 0.4), +1, 0.5);
  EXPECT_TRUE(v.significant);
  EXPECT_FALSE(v.breach);
  // And a higher-is-better series *falling* breaches.
  std::vector<double> falling = mid_run_regression(40, 0.2, 0.4);
  std::reverse(falling.begin(), falling.end());
  EXPECT_TRUE(
      stats::evaluate_slo_series("origin_up_fraction", falling, +1, 0.5)
          .breach);
}

TEST(SloSeries, InformationalDirectionNeverBreaches) {
  const stats::SloSeries v = stats::evaluate_slo_series(
      "frames_per_s", mid_run_regression(40, 0.2, 0.8), 0, 0.1);
  EXPECT_EQ(v.direction, 0);
  EXPECT_FALSE(v.breach);
}

TEST(SloSeries, TooFewBucketsNeverBreach) {
  // A steep perfect ramp, but below kSloMinBuckets defined points: the slope
  // CI from so few buckets is meaningless, so the verdict must stay PASS.
  std::vector<double> steep;
  for (std::size_t i = 0; i + 1 < stats::kSloMinBuckets; ++i) {
    steep.push_back(0.1 * static_cast<double>(i));
  }
  const stats::SloSeries v =
      stats::evaluate_slo_series("ramp", steep, -1, 0.1);
  EXPECT_LT(v.buckets, stats::kSloMinBuckets);
  EXPECT_FALSE(v.significant);
  EXPECT_FALSE(v.breach);
}

TEST(SloSeries, NanBucketsAreSkippedNotCounted) {
  std::vector<double> holes = flat_series(40, 0.3);
  holes[3] = kNan;
  holes[17] = kNan;
  holes[31] = kNan;
  const stats::SloSeries v =
      stats::evaluate_slo_series("holes", holes, -1, 0.5);
  EXPECT_EQ(v.window, 40u);
  EXPECT_EQ(v.buckets, 37u);
  EXPECT_FALSE(v.breach);
  EXPECT_TRUE(std::isfinite(v.summary.mean));
  EXPECT_TRUE(std::isfinite(v.drift));
}

TEST(SloSeries, JsonIsByteStableAndCountsBreaches) {
  std::vector<stats::SloSeries> verdicts;
  verdicts.push_back(stats::evaluate_slo_series(
      "flat", flat_series(40, 0.3), -1, 0.5));
  verdicts.push_back(stats::evaluate_slo_series(
      "burn", mid_run_regression(40, 0.2, 0.4), -1, 0.5));
  const std::string json = stats::slo_json(verdicts, 0.5);
  EXPECT_EQ(json, stats::slo_json(verdicts, 0.5));
  EXPECT_NE(json.find("\"breaches\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"flat\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"burn\""), std::string::npos);
}
