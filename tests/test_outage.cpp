// Outage models (Markov fades + scripted fault schedules), the lossy back
// channel, their composition with the wireless channel, and the analytic
// simulator's fault-injection hooks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "channel/outage.hpp"
#include "sim/experiment.hpp"
#include "sim/transfer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace channel = mobiweb::channel;
namespace sim = mobiweb::sim;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using mobiweb::Rng;
using Window = channel::FaultSchedule::Window;

namespace {

std::vector<double> uniform_content(int m) {
  return std::vector<double>(static_cast<std::size_t>(m),
                             1.0 / static_cast<double>(m));
}

}  // namespace

// ---------------------------------------------------------------- Markov ----

TEST(MarkovOutage, ValidatesDwellTimes) {
  EXPECT_THROW(channel::MarkovOutageModel(0.0, 1.0), ContractViolation);
  EXPECT_THROW(channel::MarkovOutageModel(1.0, 0.0), ContractViolation);
  EXPECT_THROW(channel::MarkovOutageModel(-1.0, 1.0), ContractViolation);
}

TEST(MarkovOutage, DutyCycleConstructor) {
  const auto model = channel::MarkovOutageModel::with_duty_cycle(0.25, 2.0);
  EXPECT_DOUBLE_EQ(model.mean_down_s(), 2.0);
  EXPECT_DOUBLE_EQ(model.mean_up_s(), 6.0);  // 2 * (1 - 0.25) / 0.25
  EXPECT_NEAR(model.outage_fraction(), 0.25, 1e-12);
  EXPECT_THROW(channel::MarkovOutageModel::with_duty_cycle(0.0, 1.0),
               ContractViolation);
  EXPECT_THROW(channel::MarkovOutageModel::with_duty_cycle(1.0, 1.0),
               ContractViolation);
}

TEST(MarkovOutage, EmpiricalDutyMatchesConfigured) {
  // Sample the renewal process on a fine grid over a long horizon; the
  // fraction of time down should approach the configured duty cycle.
  const double duty = 0.3;
  auto model = channel::MarkovOutageModel::with_duty_cycle(duty, 2.0);
  Rng rng(1234);
  const double dt = 0.05;
  long down = 0;
  const long steps = 400000;
  for (long i = 0; i < steps; ++i) {
    if (!model.link_up(static_cast<double>(i) * dt, rng)) ++down;
  }
  const double observed = static_cast<double>(down) / static_cast<double>(steps);
  EXPECT_NEAR(observed, duty, 0.03);
}

TEST(MarkovOutage, ResetRestoresUpStateAndRedraws) {
  channel::MarkovOutageModel model(1.0, 1.0);
  Rng rng(99);
  // Walk until we land inside an outage.
  double t = 0.0;
  while (model.link_up(t, rng) && t < 1000.0) t += 0.1;
  ASSERT_LT(t, 1000.0) << "never saw an outage in 1000 s of a 50% duty link";
  model.reset();
  // After reset the process restarts in the Up state at any queried time.
  EXPECT_TRUE(model.link_up(0.0, rng));
}

TEST(MarkovOutage, RepeatedQueriesAtSameTimeAgree) {
  channel::MarkovOutageModel model(0.5, 0.5);
  Rng rng(7);
  for (double t = 0.0; t < 50.0; t += 0.25) {
    const bool first = model.link_up(t, rng);
    EXPECT_EQ(model.link_up(t, rng), first) << "at t=" << t;
  }
}

TEST(MarkovOutage, CloneIsIndependent) {
  channel::MarkovOutageModel model(1.0, 1.0);
  auto copy = model.clone();
  Rng rng_a(5);
  Rng rng_b(5);
  // Same seed, same query ladder: identical answers from model and clone.
  for (double t = 0.0; t < 20.0; t += 0.5) {
    EXPECT_EQ(model.link_up(t, rng_a), copy->link_up(t, rng_b));
  }
}

TEST(MarkovOutage, SessionCloneStartsFreshAndIsDeterministic) {
  // Drive the prototype deep into its renewal timeline first: session_clone
  // must still hand back a model in the initial Up state with no transition
  // times drawn, exactly as if freshly constructed — this is what makes the
  // fleet engine's per-session fade processes independent of prefill order.
  channel::MarkovOutageModel proto(1.0, 1.0);
  Rng drive(11);
  for (double t = 0.0; t < 25.0; t += 0.3) proto.link_up(t, drive);

  for (const std::uint64_t seed : {7ull, 42ull, 1234ull}) {
    const auto clone_a = proto.session_clone();
    const auto clone_b = proto.session_clone();
    channel::MarkovOutageModel fresh(1.0, 1.0);
    Rng ra(seed);
    Rng rb(seed);
    Rng rf(seed);
    // The lazy first dwell draw anchors at the first queried time, so all
    // three walk the same time ladder from t = 0.
    EXPECT_TRUE(clone_a->link_up(0.0, ra));  // starts Up, like reset()
    EXPECT_TRUE(clone_b->link_up(0.0, rb));
    EXPECT_TRUE(fresh.link_up(0.0, rf));
    for (double t = 0.25; t < 40.0; t += 0.25) {
      const bool expected = fresh.link_up(t, rf);
      EXPECT_EQ(clone_a->link_up(t, ra), expected) << "seed=" << seed
                                                   << " t=" << t;
      EXPECT_EQ(clone_b->link_up(t, rb), expected) << "seed=" << seed
                                                   << " t=" << t;
    }
    EXPECT_DOUBLE_EQ(clone_a->outage_fraction(), proto.outage_fraction());
  }
}

// -------------------------------------------------------- FaultSchedule ----

TEST(FaultSchedule, NormalizesAndMerges) {
  const channel::FaultSchedule s({{4.0, 5.0}, {1.0, 2.0}, {1.5, 3.0}});
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(s.windows()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].end, 3.0);
  EXPECT_DOUBLE_EQ(s.windows()[1].begin, 4.0);
  EXPECT_DOUBLE_EQ(s.windows()[1].end, 5.0);
  EXPECT_DOUBLE_EQ(s.total_outage_s(), 3.0);
}

TEST(FaultSchedule, ConstructorValidates) {
  EXPECT_THROW(channel::FaultSchedule({{-1.0, 2.0}}), ContractViolation);
  EXPECT_THROW(channel::FaultSchedule({{2.0, 1.0}}), ContractViolation);
  EXPECT_THROW(
      channel::FaultSchedule({{0.0, std::numeric_limits<double>::infinity()}}),
      ContractViolation);
}

TEST(FaultSchedule, LinkUpHalfOpenWindows) {
  channel::FaultSchedule s({{1.0, 2.0}});
  Rng rng(1);
  EXPECT_TRUE(s.link_up(0.0, rng));
  EXPECT_TRUE(s.link_up(0.999, rng));
  EXPECT_FALSE(s.link_up(1.0, rng));   // begin is inclusive
  EXPECT_FALSE(s.link_up(1.999, rng));
  EXPECT_TRUE(s.link_up(2.0, rng));    // end is exclusive
  EXPECT_TRUE(s.link_up(100.0, rng));
}

TEST(FaultSchedule, ParseValidAndRoundTrip) {
  const auto s = channel::FaultSchedule::parse("0.5-1.25, 4-4.75; 2-3");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->windows().size(), 3u);
  EXPECT_DOUBLE_EQ(s->windows()[1].begin, 2.0);
  const auto replay = channel::FaultSchedule::parse(s->to_string());
  ASSERT_TRUE(replay.has_value());
  ASSERT_EQ(replay->windows().size(), s->windows().size());
  for (std::size_t i = 0; i < s->windows().size(); ++i) {
    EXPECT_DOUBLE_EQ(replay->windows()[i].begin, s->windows()[i].begin);
    EXPECT_DOUBLE_EQ(replay->windows()[i].end, s->windows()[i].end);
  }
}

TEST(FaultSchedule, ParseRejectsMalformed) {
  EXPECT_FALSE(channel::FaultSchedule::parse("1-").has_value());
  EXPECT_FALSE(channel::FaultSchedule::parse("abc").has_value());
  EXPECT_FALSE(channel::FaultSchedule::parse("1..2-3").has_value());
  EXPECT_FALSE(channel::FaultSchedule::parse("nan-2").has_value());
  EXPECT_FALSE(channel::FaultSchedule::parse("inf-inf").has_value());
  EXPECT_FALSE(channel::FaultSchedule::parse("1-2 trailing").has_value());
}

TEST(FaultSchedule, ParseClampsAndDropsEmpty) {
  // Negative begins clamp to 0; a window that becomes empty is dropped.
  const auto s = channel::FaultSchedule::parse("-5-1, -3--1");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->windows().size(), 1u);
  EXPECT_DOUBLE_EQ(s->windows()[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(s->windows()[0].end, 1.0);
}

TEST(FaultSchedule, ParseEmptyStringIsAlwaysUp) {
  auto s = channel::FaultSchedule::parse("   ");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->windows().empty());
  Rng rng(1);
  EXPECT_TRUE(s->link_up(123.0, rng));
  EXPECT_DOUBLE_EQ(s->outage_fraction(), 0.0);
}

// ------------------------------------------------- channel composition ----

TEST(FaultSchedule, SessionCloneReplaysTheSameWindows) {
  const channel::FaultSchedule proto({{1.0, 2.0}, {5.0, 7.5}});
  const auto clone = proto.session_clone();
  channel::FaultSchedule proto_again({{1.0, 2.0}, {5.0, 7.5}});
  Rng ra(3);
  Rng rb(3);
  for (double t = 0.0; t < 10.0; t += 0.125) {
    EXPECT_EQ(clone->link_up(t, ra), proto_again.link_up(t, rb)) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(clone->outage_fraction(), proto.outage_fraction());
}

TEST(ChannelOutage, FramesDuringWindowAreLost) {
  channel::ChannelConfig cfg;
  cfg.bandwidth_bps = 8000.0;  // 100-byte frame = 0.1 s airtime
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  // Frames depart at t = 0.1, 0.2, 0.3, ... — kill the window [0.15, 0.35).
  ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{0.15, 0.35}}));
  const Bytes frame(100, 0xAB);
  int lost = 0;
  for (int i = 0; i < 5; ++i) {
    const auto d = ch.send(ByteSpan(frame));
    if (d.lost) {
      ++lost;
      EXPECT_TRUE(d.frame.empty());
    } else {
      EXPECT_EQ(d.frame.size(), frame.size());
      EXPECT_FALSE(d.corrupted);
    }
  }
  EXPECT_EQ(lost, 2);  // departures at 0.2 and 0.3 fall inside the window
  EXPECT_EQ(ch.stats().frames_lost, 2);
  EXPECT_EQ(ch.stats().frames_sent, 5);
}

TEST(ChannelOutage, WithoutModelNothingIsLost) {
  channel::ChannelConfig cfg;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  const Bytes frame(64, 0x01);
  for (int i = 0; i < 10; ++i) {
    const auto d = ch.send(ByteSpan(frame));
    EXPECT_FALSE(d.lost);
  }
  EXPECT_EQ(ch.stats().frames_lost, 0);
}

TEST(ChannelFeedback, ValidatesConfig) {
  auto make = [](double loss, double delay) {
    channel::ChannelConfig cfg;
    cfg.feedback_loss_rate = loss;
    cfg.feedback_delay_s = delay;
    return channel::WirelessChannel(
        cfg, std::make_unique<channel::IidErrorModel>(0.0));
  };
  EXPECT_THROW(make(-0.1, 0.0), ContractViolation);
  EXPECT_THROW(make(1.5, 0.0), ContractViolation);
  EXPECT_THROW(make(0.0, -1.0), ContractViolation);
}

TEST(ChannelFeedback, ReliableFeedbackAdvancesClock) {
  channel::ChannelConfig cfg;
  cfg.feedback_delay_s = 0.5;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  EXPECT_TRUE(ch.send_feedback());
  EXPECT_DOUBLE_EQ(ch.now(), 0.5);
  EXPECT_EQ(ch.stats().feedback_sent, 1);
  EXPECT_EQ(ch.stats().feedback_lost, 0);
}

TEST(ChannelFeedback, AlwaysLossyNeverDeliversAndChargesNoTime) {
  channel::ChannelConfig cfg;
  cfg.feedback_loss_rate = 1.0;
  cfg.feedback_delay_s = 0.5;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(ch.send_feedback());
  EXPECT_DOUBLE_EQ(ch.now(), 0.0);
  EXPECT_EQ(ch.stats().feedback_sent, 20);
  EXPECT_EQ(ch.stats().feedback_lost, 20);
}

TEST(ChannelFeedback, DroppedWhileLinkDown) {
  channel::ChannelConfig cfg;
  channel::WirelessChannel ch(cfg, std::make_unique<channel::IidErrorModel>(0.0));
  ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{0.0, 10.0}}));
  EXPECT_FALSE(ch.link_up_now());
  EXPECT_FALSE(ch.send_feedback());
  EXPECT_EQ(ch.stats().feedback_lost, 1);
}

// ----------------------------------------- Gilbert-Elliott property test ----

TEST(GilbertElliott, AverageRatePropertyHolds) {
  // with_average_rate(alpha, burst) promises a steady-state corruption rate
  // of alpha regardless of burstiness. Check the analytic claim and the
  // empirical rate over a long run; bursts inflate the variance, so the
  // tolerance scales with the burst length.
  Rng rng(20260805);
  for (const double alpha : {0.05, 0.1, 0.3}) {
    for (const double burst : {2.0, 8.0, 32.0}) {
      auto model = channel::GilbertElliottModel::with_average_rate(alpha, burst);
      EXPECT_NEAR(model.steady_state_rate(), alpha, 1e-9)
          << "alpha=" << alpha << " burst=" << burst;
      const long draws = 200000;
      long corrupted = 0;
      for (long i = 0; i < draws; ++i) {
        if (model.next_corrupted(rng)) ++corrupted;
      }
      const double observed =
          static_cast<double>(corrupted) / static_cast<double>(draws);
      // ~6 sigma for a stationary chain whose effective sample size shrinks
      // by the burst length.
      const double tol =
          6.0 * std::sqrt(alpha * (1.0 - alpha) * burst /
                          static_cast<double>(draws)) + 0.002;
      EXPECT_NEAR(observed, alpha, tol) << "alpha=" << alpha << " burst=" << burst;
    }
  }
}

TEST(GilbertElliott, ResetRestoresGoodState) {
  auto model = channel::GilbertElliottModel::with_average_rate(0.3, 8.0);
  Rng rng(17);
  // Drive until the chain enters the Bad state.
  int guard = 0;
  while (!model.in_bad_state() && guard++ < 100000) model.next_corrupted(rng);
  ASSERT_TRUE(model.in_bad_state());
  model.reset();
  EXPECT_FALSE(model.in_bad_state());
}

// ------------------------------------------------- analytic sim hooks ----

TEST(SimOutage, LinkDownPacketsAreLostButCharged) {
  sim::TransferConfig cfg;
  cfg.m = 4;
  cfg.n = 6;
  cfg.alpha = 0.0;
  cfg.max_rounds = 3;
  // Kill the whole first round; round 2 completes from fresh packets.
  int calls = 0;
  cfg.link_up = [&calls](double) { return ++calls > 6; };
  Rng rng(3);
  const auto r = sim::simulate_transfer(uniform_content(cfg.m), cfg, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 2);
  EXPECT_EQ(r.packets, 6 + 4);  // round 1 fully lost (charged), round 2 stops at m
}

TEST(SimOutage, AlwaysLostFeedbackIsCappedNotHung) {
  sim::TransferConfig cfg;
  cfg.m = 4;
  cfg.n = 4;
  cfg.alpha = 0.0;
  cfg.max_rounds = 3;
  cfg.request_delay = 1.0;
  cfg.link_up = [](double) { return false; };   // link never up
  cfg.feedback_lost = [] { return true; };      // every request dropped
  Rng rng(4);
  const auto r = sim::simulate_transfer(uniform_content(cfg.m), cfg, rng);
  EXPECT_TRUE(r.gave_up);
  EXPECT_EQ(r.rounds, 3);
  // Two stalled-round requests, each hitting the retry cap.
  EXPECT_NEAR(r.time - static_cast<double>(r.packets) * cfg.time_per_packet,
              2.0 * static_cast<double>(sim::kMaxFeedbackTries), 1e-9);
}

TEST(SimOutage, ArqLinkDownPacketsAreLost) {
  sim::TransferConfig cfg;
  cfg.m = 4;
  cfg.alpha = 0.0;
  cfg.max_rounds = 4;
  int calls = 0;
  cfg.link_up = [&calls](double) { return ++calls > 2; };  // lose 2 packets
  Rng rng(5);
  const auto r = sim::simulate_arq_transfer(uniform_content(cfg.m), cfg, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 2);
  EXPECT_EQ(r.packets, 4 + 2);  // round 2 resends exactly the two lost ones
}

TEST(ExperimentOutage, RunsAndDegradesThroughput) {
  sim::ExperimentParams clean;
  clean.repetitions = 2;
  clean.documents_per_session = 30;
  clean.max_rounds = 10;
  sim::ExperimentParams faulty = clean;
  faulty.outage_duty = 0.4;
  faulty.mean_outage_s = 0.5;
  faulty.feedback_loss = 0.3;
  const auto base = sim::run_browsing_experiment(clean);
  const auto hit = sim::run_browsing_experiment(faulty);
  // Outages burn airtime without delivering: mean response time must rise.
  EXPECT_GT(hit.response_time.mean, base.response_time.mean);
  EXPECT_GT(hit.total_packets, base.total_packets);
}

TEST(ExperimentOutage, ValidatesKnobs) {
  sim::ExperimentParams p;
  p.repetitions = 1;
  p.documents_per_session = 1;
  p.outage_duty = 1.0;
  EXPECT_THROW(sim::run_browsing_experiment(p), ContractViolation);
  p.outage_duty = 0.2;
  p.mean_outage_s = 0.0;
  EXPECT_THROW(sim::run_browsing_experiment(p), ContractViolation);
  p.mean_outage_s = 1.0;
  p.feedback_loss = 1.0;
  EXPECT_THROW(sim::run_browsing_experiment(p), ContractViolation);
}
