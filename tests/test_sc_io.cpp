// SC serialization round trips and compression-enabled linearization.
#include <gtest/gtest.h>

#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "doc/sc_io.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace xml = mobiweb::xml;

namespace {

const char* kXml = R"(<paper>
  <title>Weakly Connected Browsing</title>
  <abstract><para>mobile web browsing over wireless channels with caching
  and redundancy for fault tolerance</para></abstract>
  <section><title>Body</title>
    <para>packets cooked packets raw packets dispersal</para>
    <subsection><para>vandermonde matrices over finite fields</para></subsection>
  </section>
</paper>)";

doc::StructuralCharacteristic make_sc() {
  doc::ScGenerator gen;
  return gen.generate(xml::parse(kXml));
}

}  // namespace

TEST(ScIo, RoundTripPreservesStructureAndTerms) {
  const auto original = make_sc();
  const std::string serialized = doc::write_sc(original);
  const auto restored = doc::parse_sc(serialized);

  EXPECT_EQ(restored.norm(), original.norm());
  EXPECT_NEAR(restored.weighted_total(), original.weighted_total(), 1e-9);

  const auto orig_rows = original.rows();
  const auto rest_rows = restored.rows();
  ASSERT_EQ(orig_rows.size(), rest_rows.size());
  for (std::size_t i = 0; i < orig_rows.size(); ++i) {
    EXPECT_EQ(rest_rows[i].label, orig_rows[i].label);
    EXPECT_EQ(rest_rows[i].unit->lod, orig_rows[i].unit->lod);
    EXPECT_EQ(rest_rows[i].unit->title, orig_rows[i].unit->title);
    EXPECT_EQ(rest_rows[i].unit->virtual_unit, orig_rows[i].unit->virtual_unit);
    EXPECT_NEAR(rest_rows[i].unit->info_content, orig_rows[i].unit->info_content,
                1e-9)
        << rest_rows[i].label;
    EXPECT_EQ(rest_rows[i].unit->terms.counts, orig_rows[i].unit->terms.counts);
  }
}

TEST(ScIo, QueriesWorkOnRestoredSc) {
  const auto original = make_sc();
  const auto restored = doc::parse_sc(doc::write_sc(original));
  doc::ScGenerator gen;
  const auto query = doc::Query::from_text("caching packets", gen.extractor());
  const doc::ContentScorer a(original, query);
  const doc::ContentScorer b(restored, query);
  const auto rows_a = original.rows();
  const auto rows_b = restored.rows();
  for (std::size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_NEAR(a.qic(*rows_a[i].unit), b.qic(*rows_b[i].unit), 1e-9);
    EXPECT_NEAR(a.mqic(*rows_a[i].unit), b.mqic(*rows_b[i].unit), 1e-9);
  }
}

TEST(ScIo, RejectsMalformedInput) {
  EXPECT_THROW(doc::parse_sc("<nonsense/>"), std::invalid_argument);
  EXPECT_THROW(doc::parse_sc("<sc></sc>"), std::invalid_argument);
  EXPECT_THROW(doc::parse_sc("<sc><unit/></sc>"), std::invalid_argument);  // no lod
  EXPECT_THROW(doc::parse_sc("<sc><unit lod=\"galaxy\"/></sc>"),
               std::invalid_argument);
  EXPECT_THROW(
      doc::parse_sc("<sc><unit lod=\"document\"><terms><t w=\"x\" c=\"-1\"/>"
                    "</terms></unit></sc>"),
      std::invalid_argument);
  EXPECT_THROW(doc::parse_sc("not xml at all"), xml::ParseError);
}

TEST(ScIo, SerializedFormIsValidXml) {
  const std::string serialized = doc::write_sc(make_sc());
  EXPECT_NO_THROW(xml::parse(serialized));
  EXPECT_NE(serialized.find("<sc"), std::string::npos);
  EXPECT_NE(serialized.find("lod=\"document\""), std::string::npos);
}

TEST(CompressedLinearize, ShrinksPayloadAndReassembles) {
  // Units are compressed independently, so each needs internal redundancy
  // for the payload to shrink (tiny unique paragraphs would expand slightly).
  std::string src = "<paper>";
  for (int p = 0; p < 4; ++p) {
    src += "<para>";
    for (int r = 0; r < 10; ++r) {
      src += "packet " + std::to_string(p) +
             " over the weakly connected wireless channel again and again; ";
    }
    src += "vandermonde</para>";
  }
  src += "</paper>";
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(src));
  const auto raw =
      doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
  const auto packed = doc::linearize(sc, {.lod = doc::Lod::kParagraph,
                                          .rank = doc::RankBy::kIc,
                                          .compress = true});
  EXPECT_TRUE(packed.compressed_units);
  EXPECT_LT(packed.payload.size(), raw.payload.size());
  ASSERT_EQ(packed.segments.size(), raw.segments.size());
  // Same transmission order and content scores, different byte sizes.
  for (std::size_t i = 0; i < packed.segments.size(); ++i) {
    EXPECT_EQ(packed.segments[i].label, raw.segments[i].label);
    EXPECT_NEAR(packed.segments[i].content, raw.segments[i].content, 1e-12);
  }
  const std::string packed_text = doc::reassemble_text(packed);
  const std::string raw_text = doc::reassemble_text(raw);
  EXPECT_EQ(packed_text, raw_text);
  EXPECT_NE(packed_text.find("vandermonde"), std::string::npos);
}

TEST(CompressedLinearize, DocumentOrderAlsoSupported) {
  const auto sc = make_sc();
  const auto packed = doc::linearize(sc, {.lod = doc::Lod::kSection,
                                          .rank = doc::RankBy::kDocumentOrder,
                                          .compress = true});
  EXPECT_EQ(doc::reassemble_text(packed),
            doc::reassemble_text(doc::linearize(
                sc, {.lod = doc::Lod::kSection,
                     .rank = doc::RankBy::kDocumentOrder})));
}

TEST(ScIoHardening, AbsurdTermCountRejected) {
  // A forged count near LONG_MAX would overflow the accumulated totals; the
  // reader bounds counts before accepting them.
  EXPECT_THROW(doc::parse_sc("<sc><unit label=\"r\" lod=\"0\">"
                             "<term count=\"9223372036854775807\">x</term>"
                             "</unit></sc>"),
               std::invalid_argument);
  EXPECT_THROW(doc::parse_sc("<sc><unit label=\"r\" lod=\"0\">"
                             "<term count=\"1000000000001\">x</term>"
                             "</unit></sc>"),
               std::invalid_argument);
}
