// ResilientSession: suspend/resume across link outages, lossy-feedback
// retries with backoff, retry-budget exhaustion, and degraded-mode partial
// delivery — plus the BrowseSession resilient surface.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "channel/outage.hpp"
#include "core/mobiweb.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "obs/trace.hpp"
#include "transmit/receiver.hpp"
#include "transmit/resilient.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "xml/parser.hpp"

namespace channel = mobiweb::channel;
namespace doc = mobiweb::doc;
namespace obs = mobiweb::obs;
namespace transmit = mobiweb::transmit;
namespace xml = mobiweb::xml;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using Window = channel::FaultSchedule::Window;

namespace {

std::string make_xml(std::size_t paragraphs = 12, std::size_t words = 40) {
  std::string src = "<paper>";
  for (std::size_t p = 0; p < paragraphs; ++p) {
    src += "<para>";
    for (std::size_t w = 0; w < words; ++w) {
      src += "word" + std::to_string(p) + "x" + std::to_string(w) + " ";
    }
    src += "</para>";
  }
  src += "</paper>";
  return src;
}

doc::LinearDocument make_linear() {
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(make_xml()));
  return doc::linearize(sc, {.lod = doc::Lod::kParagraph,
                             .rank = doc::RankBy::kIc});
}

struct Rig {
  transmit::DocumentTransmitter tx;
  transmit::ClientReceiver rx;
  channel::WirelessChannel ch;
  double frame_time;  // seconds to serialize one frame

  Rig(const doc::LinearDocument& linear, bool caching)
      : tx(linear, {.packet_size = 64, .gamma = 1.5, .doc_id = 9}),
        rx(make_receiver_config(tx, caching), tx.document().segments),
        ch(channel::ChannelConfig{},
           std::make_unique<channel::IidErrorModel>(0.0)),
        frame_time(ch.transmit_time(tx.frame(0).size())) {}

  static transmit::ReceiverConfig make_receiver_config(
      const transmit::DocumentTransmitter& tx, bool caching) {
    transmit::ReceiverConfig rc;
    rc.doc_id = tx.doc_id();
    rc.m = tx.m();
    rc.n = tx.n();
    rc.packet_size = tx.packet_size();
    rc.payload_size = tx.payload_size();
    rc.caching = caching;
    return rc;
  }
};

}  // namespace

TEST(ResilientSession, ValidatesRetryPolicy) {
  const auto linear = make_linear();
  Rig rig(linear, true);
  transmit::ResilientConfig cfg;
  cfg.retry.retry_budget = 0;
  EXPECT_THROW(transmit::ResilientSession(rig.tx, rig.rx, rig.ch, cfg),
               ContractViolation);
  cfg = {};
  cfg.retry.backoff_multiplier = 0.5;
  EXPECT_THROW(transmit::ResilientSession(rig.tx, rig.rx, rig.ch, cfg),
               ContractViolation);
  cfg = {};
  cfg.retry.max_backoff_s = 0.1;  // < initial_timeout_s
  EXPECT_THROW(transmit::ResilientSession(rig.tx, rig.rx, rig.ch, cfg),
               ContractViolation);
}

TEST(ResilientSession, CleanLinkCompletesInOneRound) {
  const auto linear = make_linear();
  Rig rig(linear, true);
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, {});
  const auto r = session.run();
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_TRUE(r.session.completed);
  EXPECT_EQ(r.session.rounds, 1);
  EXPECT_EQ(r.request_attempts, 0);
  EXPECT_EQ(r.outages_ridden, 0);
  // On completion the partial document simply carries every unit.
  EXPECT_TRUE(r.partial.complete);
  EXPECT_EQ(r.partial.units.size(), rig.tx.document().segments.size());
}

// The acceptance test: a scripted outage swallows the first j frames of
// round 1. The Caching client resumes from its packet cache and needs
// strictly fewer retransmitted frames than the NoCaching client, which
// discards the round-1 survivors and re-collects the document from scratch.
TEST(ResilientSession, CacheResumeBeatsNoCachingRestart) {
  const auto linear = make_linear();
  long frames_caching = 0;
  long frames_nocaching = 0;
  for (const bool caching : {true, false}) {
    Rig rig(linear, caching);
    const std::size_t m = rig.tx.m();
    const std::size_t n = rig.tx.n();
    ASSERT_GE(m, 4u);
    // Lose frames 1..j of round 1 (depart times T..jT): the cache retains the
    // n-j tail survivors, not enough to decode (n - j = m - 3 < m).
    const std::size_t j = n - m + 3;
    const double T = rig.frame_time;
    rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
        std::vector<Window>{{0.5 * T, (static_cast<double>(j) + 0.5) * T}}));
    transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, {});
    const auto r = session.run();
    EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted)
        << "caching=" << caching;
    EXPECT_EQ(r.session.rounds, 2);
    (caching ? frames_caching : frames_nocaching) = r.session.frames_sent;
  }
  // Caching: n in round 1 + only the 3 missing packets in round 2.
  // NoCaching: n in round 1 + a full fresh m in round 2.
  EXPECT_LT(frames_caching, frames_nocaching);
  const auto probe = Rig(linear, true);
  EXPECT_EQ(frames_caching, static_cast<long>(probe.tx.n()) + 3);
  EXPECT_EQ(frames_nocaching,
            static_cast<long>(probe.tx.n()) + static_cast<long>(probe.tx.m()));
}

TEST(ResilientSession, SuspendsAcrossOutageAndResumes) {
  const auto linear = make_linear();
  Rig rig(linear, true);
  const std::size_t m = rig.tx.m();
  const std::size_t n = rig.tx.n();
  const double T = rig.frame_time;
  const double round_end = static_cast<double>(n) * T;
  // Window 1 swallows the first n-m+1 frames so round 1 stalls one packet
  // short of decoding; window 2 keeps the link down past the end of the
  // round, so the client must ride out the outage before its retransmission
  // request can get through.
  const double j = static_cast<double>(n - m + 1);
  rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{0.5 * T, (j + 0.5) * T},
                          {round_end - 0.5 * T, round_end + 2.0}}));
  obs::SessionTrace trace;
  transmit::ResilientConfig cfg;
  cfg.trace = &trace;
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, cfg);
  const auto r = session.run();
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(r.outages_ridden, 1);
  EXPECT_GT(r.backoff_total_s, 0.0);
  EXPECT_GE(trace.outage_count(), 1L);
  EXPECT_GE(trace.backoff_count(), 1L);
  EXPECT_FALSE(trace.degraded());
}

TEST(ResilientSession, BudgetExhaustionDegradesWithPartialDocument) {
  const auto linear = make_linear();
  Rig rig(linear, true);
  const double T = rig.frame_time;
  // Deliver the first 30 clear-text frames, then the link dies forever.
  rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{30.5 * T, 1e18}}));
  obs::SessionTrace trace;
  transmit::ResilientConfig cfg;
  cfg.trace = &trace;
  cfg.retry.retry_budget = 5;
  cfg.retry.initial_timeout_s = 0.2;
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, cfg);
  const auto r = session.run();
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kDegraded);
  EXPECT_FALSE(r.session.completed);
  EXPECT_TRUE(trace.degraded());
  // Degraded-mode delivery must carry something: the 30 cached clear packets
  // fully cover at least the top-ranked unit.
  ASSERT_FALSE(r.partial.empty());
  EXPECT_FALSE(r.partial.complete);
  EXPECT_GT(r.partial.content, 0.0);
  EXPECT_GE(r.partial.clear_packets, 29u);
  // Units arrive in ranked (transmission) order: offsets must be increasing.
  for (std::size_t i = 1; i < r.partial.units.size(); ++i) {
    EXPECT_GT(r.partial.units[i].segment.offset,
              r.partial.units[i - 1].segment.offset);
  }
}

TEST(ResilientSession, DeadLinkFromStartNeverHangs) {
  const auto linear = make_linear();
  Rig rig(linear, true);
  rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{0.0, 1e18}}));
  transmit::ResilientConfig cfg;
  cfg.retry.retry_budget = 4;
  cfg.retry.initial_timeout_s = 0.1;
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, cfg);
  const auto r = session.run();  // must terminate, not spin
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kDegraded);
  EXPECT_TRUE(r.partial.empty());
  EXPECT_DOUBLE_EQ(r.session.content_received, 0.0);
}

TEST(ResilientSession, LossyFeedbackRetriesWithBackoff) {
  const auto linear = make_linear();
  // Corrupt exactly the first n-m+1 frames: round 1 stalls one packet short,
  // round 2 completes. The back channel drops requests with probability 0.7,
  // so the single stalled round needs timeout+backoff retries to get its
  // request through (seeded rng makes the exact count deterministic).
  transmit::DocumentTransmitter tx(linear,
                                   {.packet_size = 64, .gamma = 1.5, .doc_id = 2});
  const long corrupt_first =
      static_cast<long>(tx.n()) - static_cast<long>(tx.m()) + 1;
  class FirstKCorrupted final : public channel::ErrorModel {
   public:
    explicit FirstKCorrupted(long k) : remaining_(k) {}
    bool next_corrupted(mobiweb::Rng&) override {
      return remaining_-- > 0;
    }
    [[nodiscard]] double steady_state_rate() const override { return 0.0; }
    [[nodiscard]] std::unique_ptr<channel::ErrorModel> clone() const override {
      return std::make_unique<FirstKCorrupted>(remaining_);
    }

   private:
    long remaining_;
  };
  transmit::ReceiverConfig rc = Rig::make_receiver_config(tx, true);
  transmit::ClientReceiver rx(rc, tx.document().segments);
  channel::ChannelConfig cc;
  cc.feedback_loss_rate = 0.7;
  channel::WirelessChannel ch(cc,
                              std::make_unique<FirstKCorrupted>(corrupt_first));
  transmit::ResilientConfig cfg;
  cfg.retry.initial_timeout_s = 0.1;
  transmit::ResilientSession session(tx, rx, ch, cfg);
  const auto r = session.run();
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(r.session.rounds, 2);
  EXPECT_GE(r.request_attempts, 1);
  EXPECT_EQ(r.timeouts, r.request_attempts - 1);
  if (r.timeouts > 0) EXPECT_GT(r.backoff_total_s, 0.0);
}

TEST(ResilientSession, JitterIsDeterministicPerSeed) {
  const auto linear = make_linear();
  double first_backoff = -1.0;
  for (int run = 0; run < 2; ++run) {
    Rig rig(linear, true);
    const std::size_t m = rig.tx.m();
    const std::size_t n = rig.tx.n();
    const double T = rig.frame_time;
    const double round_end = static_cast<double>(n) * T;
    const double j = static_cast<double>(n - m + 1);
    rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
        std::vector<Window>{{0.5 * T, (j + 0.5) * T},
                            {round_end - 0.5 * T, round_end + 1.0}}));
    transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, {});
    const auto r = session.run();
    EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
    EXPECT_GT(r.backoff_total_s, 0.0);
    if (run == 0) {
      first_backoff = r.backoff_total_s;
    } else {
      EXPECT_DOUBLE_EQ(r.backoff_total_s, first_backoff);
    }
  }
}

// ------------------------------------------------- BrowseSession surface ----

TEST(BrowseResilient, DegradedFetchDeliversPartialText) {
  mobiweb::Server server;
  server.publish_xml("doc://long", make_xml(12, 40));
  channel::FaultSchedule outage({{0.5, 1e18}});
  mobiweb::BrowseConfig bc;
  bc.alpha = 0.0;
  bc.packet_size = 32;
  bc.resilient = true;
  bc.outage = &outage;
  bc.retry.retry_budget = 4;
  bc.retry.initial_timeout_s = 0.2;
  mobiweb::BrowseSession session(server, bc);
  const auto r = session.fetch("doc://long");
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kDegraded);
  ASSERT_FALSE(r.partial.empty());
  EXPECT_FALSE(r.text.empty());
  // The degraded text is exactly the concatenated renderable units.
  std::string expect;
  for (const auto& unit : r.partial.units) {
    expect.append(unit.bytes.begin(), unit.bytes.end());
  }
  EXPECT_EQ(r.text, expect);
}

TEST(BrowseResilient, CompletedFetchMatchesPlainPath) {
  mobiweb::Server server;
  server.publish_xml("doc://ok", make_xml(6, 20));
  mobiweb::BrowseConfig plain;
  plain.alpha = 0.0;
  mobiweb::BrowseConfig resilient = plain;
  resilient.resilient = true;
  mobiweb::BrowseSession a(server, plain);
  mobiweb::BrowseSession b(server, resilient);
  const auto ra = a.fetch("doc://ok");
  const auto rb = b.fetch("doc://ok");
  EXPECT_EQ(ra.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(rb.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(ra.text, rb.text);
  EXPECT_TRUE(rb.partial.complete);
}

TEST(BrowseResilient, CompressedDegradedUnitsDecompress) {
  mobiweb::Server server;
  server.publish_xml("doc://z", make_xml(12, 40));
  channel::FaultSchedule outage({{0.6, 1e18}});
  mobiweb::BrowseConfig bc;
  bc.alpha = 0.0;
  bc.packet_size = 32;
  bc.resilient = true;
  bc.outage = &outage;
  bc.retry.retry_budget = 4;
  mobiweb::BrowseSession session(server, bc);
  mobiweb::FetchOptions opts;
  opts.compress = true;
  const auto r = session.fetch("doc://z", opts);
  if (!r.partial.empty()) {
    // Whatever units made it through must decompress into readable text that
    // appears verbatim in the original document.
    EXPECT_FALSE(r.text.empty());
    EXPECT_NE(r.text.find("word"), std::string::npos);
  } else {
    EXPECT_TRUE(r.text.empty());
  }
}

TEST(ResilientSession, RequestInsideAFadeIsHeldOffUntilResume) {
  // Round 1 stalls one packet short (scripted corruption, not loss), and a
  // fade opens just before the round boundary and outlasts it. The client
  // must NOT burn its retransmission request into the dead link: it backs
  // off (consuming budget) until the link is observed up, and only then does
  // the single request go out — zero feedback frames lost to the fade.
  const auto linear = make_linear();
  Rig rig(linear, true);
  const std::size_t m = rig.tx.m();
  const std::size_t n = rig.tx.n();
  const double T = rig.frame_time;
  const double round_end = static_cast<double>(n) * T;
  const double j = static_cast<double>(n - m + 1);
  rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{0.5 * T, (j + 0.5) * T},
                          {round_end - 0.5 * T, round_end + 3.0}}));
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, {});
  const auto r = session.run();
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(r.session.rounds, 2);
  EXPECT_EQ(r.outages_ridden, 1);
  // Every pre-resume attempt was a backoff wait, then one clean request.
  EXPECT_GE(r.request_attempts, 2);
  EXPECT_GT(r.backoff_total_s, 0.0);
  EXPECT_EQ(rig.ch.stats().feedback_sent, 1);
  EXPECT_EQ(rig.ch.stats().feedback_lost, 0);
}
