// Flight recorder: ring wraparound, snapshot ordering, SessionTrace
// mirroring without event capture, and the automatic dump when a
// ResilientSession ends Degraded or GaveUp.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "channel/outage.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "transmit/receiver.hpp"
#include "transmit/resilient.hpp"
#include "transmit/transmitter.hpp"
#include "util/check.hpp"
#include "xml/parser.hpp"

namespace channel = mobiweb::channel;
namespace doc = mobiweb::doc;
namespace obs = mobiweb::obs;
namespace transmit = mobiweb::transmit;
namespace xml = mobiweb::xml;
using mobiweb::ContractViolation;
using Window = channel::FaultSchedule::Window;

namespace {

doc::LinearDocument make_linear() {
  std::string src = "<paper>";
  for (int p = 0; p < 12; ++p) {
    src += "<para>";
    for (int w = 0; w < 40; ++w) {
      src += "word" + std::to_string(p) + "x" + std::to_string(w) + " ";
    }
    src += "</para>";
  }
  src += "</paper>";
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(src));
  return doc::linearize(sc, {.lod = doc::Lod::kParagraph,
                             .rank = doc::RankBy::kIc});
}

struct Rig {
  transmit::DocumentTransmitter tx;
  transmit::ClientReceiver rx;
  channel::WirelessChannel ch;
  double frame_time;

  explicit Rig(const doc::LinearDocument& linear)
      : tx(linear, {.packet_size = 64, .gamma = 1.5, .doc_id = 9}),
        rx(make_receiver_config(tx), tx.document().segments),
        ch(channel::ChannelConfig{},
           std::make_unique<channel::IidErrorModel>(0.0)),
        frame_time(ch.transmit_time(tx.frame(0).size())) {}

  static transmit::ReceiverConfig make_receiver_config(
      const transmit::DocumentTransmitter& tx) {
    transmit::ReceiverConfig rc;
    rc.doc_id = tx.doc_id();
    rc.m = tx.m();
    rc.n = tx.n();
    rc.packet_size = tx.packet_size();
    rc.payload_size = tx.payload_size();
    rc.caching = true;
    return rc;
  }
};

}  // namespace

TEST(FlightRecorder, RejectsZeroCapacity) {
  EXPECT_THROW(obs::FlightRecorder(0), ContractViolation);
}

TEST(FlightRecorder, KeepsTheMostRecentEventsOnWraparound) {
  obs::FlightRecorder flight(4);
  EXPECT_EQ(flight.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    flight.record({obs::Event::kFrameSent, static_cast<double>(i), 1, i, 0.0});
  }
  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.recorded(), 10);
  EXPECT_EQ(flight.dropped(), 6);
  const auto snap = flight.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(snap[i].time, 6.0 + i) << "snapshot must be oldest-first";
    EXPECT_EQ(snap[i].seq, 6 + i);
  }
}

TEST(FlightRecorder, SnapshotBeforeWraparoundIsInsertionOrder) {
  obs::FlightRecorder flight(8);
  for (int i = 0; i < 3; ++i) {
    flight.record({obs::Event::kBackoff, static_cast<double>(i), 0, -1, 0.1});
  }
  EXPECT_EQ(flight.size(), 3u);
  EXPECT_EQ(flight.dropped(), 0);
  const auto snap = flight.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0].time, 0.0);
  EXPECT_DOUBLE_EQ(snap[2].time, 2.0);
}

TEST(FlightRecorder, ClearKeepsCapacityAndSink) {
  int dumps = 0;
  obs::FlightRecorder flight(4);
  flight.set_sink([&dumps](const std::string&) { ++dumps; });
  flight.record({obs::Event::kResume, 1.0, 1, -1, 0.0});
  flight.clear();
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_EQ(flight.capacity(), 4u);
  flight.dump("manual");
  EXPECT_EQ(dumps, 1);
}

TEST(FlightRecorder, ToJsonCarriesReasonAndEvents) {
  obs::FlightRecorder flight(4);
  flight.record({obs::Event::kOutageBegin, 1.5, 2, -1, 0.0});
  const std::string json = flight.to_json("why \"not\"");
  EXPECT_NE(json.find("\"reason\": \"why \\\"not\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"outage_begin\""), std::string::npos);
  EXPECT_NE(json.find("\"t\": 1.5"), std::string::npos);
}

TEST(FlightRecorder, MirrorsTraceEventsWithoutCapture) {
  obs::FlightRecorder flight(16);
  obs::SessionTrace trace;
  trace.set_flight(&flight);
  ASSERT_EQ(trace.flight(), &flight);
  trace.session_start(0.0);
  trace.round_start(1, 0.0);
  trace.frame_sent(0, 0.1);
  trace.round_end(0.2);
  trace.session_end(0.2, 0.0);
  EXPECT_TRUE(trace.events().empty()) << "capture stays off";
  EXPECT_EQ(flight.recorded(), 5);
  const auto snap = flight.snapshot();
  EXPECT_EQ(snap.front().type, obs::Event::kSessionStart);
  EXPECT_EQ(snap.back().type, obs::Event::kSessionEnd);
  // clear() keeps the attachment, like the capture mode.
  trace.clear();
  EXPECT_EQ(trace.flight(), &flight);
}

TEST(FlightRecorder, ResilientSessionDumpsOnDegraded) {
  const auto linear = make_linear();
  Rig rig(linear);
  const double T = rig.frame_time;
  // First 30 clear frames arrive, then the link dies forever.
  rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{30.5 * T, 1e18}}));

  obs::FlightRecorder flight(64);
  std::vector<std::string> dumps;
  flight.set_sink([&dumps](const std::string& json) { dumps.push_back(json); });

  transmit::ResilientConfig cfg;
  cfg.flight = &flight;  // no trace attached: the scratch-trace path
  cfg.retry.retry_budget = 5;
  cfg.retry.initial_timeout_s = 0.2;
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, cfg);
  const auto r = session.run();

  EXPECT_EQ(r.session.status, transmit::SessionStatus::kDegraded);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(flight.dump_count(), 1);
  EXPECT_NE(dumps[0].find("\"reason\": \"degraded\""), std::string::npos);
  // The ring saw the whole story: frames, the outage, the backoffs.
  EXPECT_NE(dumps[0].find("\"outage_begin\""), std::string::npos);
  EXPECT_NE(dumps[0].find("\"backoff\""), std::string::npos);
  EXPECT_GT(flight.recorded(), 30);
}

TEST(FlightRecorder, ResilientSessionDumpsThroughCallerTrace) {
  const auto linear = make_linear();
  Rig rig(linear);
  // Dead from the start: degrade with an empty partial document.
  rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{0.0, 1e18}}));

  obs::FlightRecorder flight(32);
  int dumps = 0;
  flight.set_sink([&dumps](const std::string&) { ++dumps; });
  obs::SessionTrace trace("postmortem");

  transmit::ResilientConfig cfg;
  cfg.trace = &trace;
  cfg.flight = &flight;
  cfg.retry.retry_budget = 4;
  cfg.retry.initial_timeout_s = 0.1;
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, cfg);
  const auto r = session.run();

  EXPECT_EQ(r.session.status, transmit::SessionStatus::kDegraded);
  EXPECT_EQ(dumps, 1);
  EXPECT_TRUE(trace.degraded());
  // The session detached the recorder from the caller's trace afterwards.
  EXPECT_EQ(trace.flight(), nullptr);
}

TEST(FlightRecorder, NoDumpOnCleanCompletion) {
  const auto linear = make_linear();
  Rig rig(linear);
  obs::FlightRecorder flight(32);
  int dumps = 0;
  flight.set_sink([&dumps](const std::string&) { ++dumps; });
  transmit::ResilientConfig cfg;
  cfg.flight = &flight;
  transmit::ResilientSession session(rig.tx, rig.rx, rig.ch, cfg);
  const auto r = session.run();
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(dumps, 0);
  EXPECT_GT(flight.recorded(), 0) << "events still mirrored into the ring";
}
