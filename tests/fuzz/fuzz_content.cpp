// Fuzz target: differential check of the content-scoring schemes. Any XML
// document the parser accepts is run through the SC generator, and then all
// three information-content definitions — the paper's log-weighted IC
// (doc/content), the length share and the TF-IDF scheme (doc/content_alt) —
// must agree on the shared contract: normalized to 1 at the root, additive
// over the tree, every unit in [0, 1]. The query-based QIC/MQIC scores are
// held to their §3.2 invariants on the same document.
#include <cmath>
#include <cstdint>
#include <string_view>

#include "doc/content.hpp"
#include "doc/content_alt.hpp"
#include "fuzz_input.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace xml = mobiweb::xml;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  xml::Document parsed;
  try {
    parsed = xml::parse(text);
  } catch (const xml::ParseError&) {
    return 0;
  }

  const doc::ScGenerator gen;
  const doc::StructuralCharacteristic sc = gen.generate(parsed);
  const bool has_terms = sc.document_terms().total() > 0;

  // Paper IC: root 1 (non-empty), additive, in range.
  if (has_terms) {
    MOBIWEB_FUZZ_ASSERT(std::fabs(sc.root().info_content - 1.0) < 1e-9,
                        "IC root not normalized");
  }
  doc::walk(sc.root(), [](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    MOBIWEB_FUZZ_ASSERT(u.info_content >= -1e-12 && u.info_content <= 1.0 + 1e-9,
                        "IC out of range");
    double child_sum = 0.0;
    for (const auto& c : u.children) child_sum += c.info_content;
    MOBIWEB_FUZZ_ASSERT(child_sum <= u.info_content + 1e-9,
                        "children IC exceeds parent");
  });

  // Length content: same contract, different definition.
  const double root_length = doc::length_content(sc, sc.root());
  if (has_terms) {
    MOBIWEB_FUZZ_ASSERT(std::fabs(root_length - 1.0) < 1e-9,
                        "length content root not normalized");
  }
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    const double lc = doc::length_content(sc, u);
    MOBIWEB_FUZZ_ASSERT(lc >= -1e-12 && lc <= 1.0 + 1e-9,
                        "length content out of range");
    double child_sum = 0.0;
    for (const auto& c : u.children) child_sum += doc::length_content(sc, c);
    MOBIWEB_FUZZ_ASSERT(child_sum <= lc + 1e-9,
                        "children length content exceeds parent");
  });

  // TF-IDF content against a corpus containing this very document.
  doc::CorpusStats corpus;
  corpus.add_document(sc);
  const doc::TfIdfScorer tfidf(sc, corpus);
  if (has_terms) {
    MOBIWEB_FUZZ_ASSERT(std::fabs(tfidf.content(sc.root()) - 1.0) < 1e-9,
                        "tf-idf root not normalized");
  }
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    const double tc = tfidf.content(u);
    MOBIWEB_FUZZ_ASSERT(tc >= -1e-12 && tc <= 1.0 + 1e-9,
                        "tf-idf content out of range");
  });

  // QIC/MQIC with a query drawn from the document's own most frequent term
  // (guaranteed hit when terms exist) — §3.2 normalization invariants.
  if (has_terms) {
    const auto sorted = sc.document_terms().sorted();
    const doc::Query query = doc::Query::from_terms(
        [&] {
          mobiweb::text::TermCounts t;
          t.add(sorted.front().first, 1);
          return t;
        }());
    const doc::ContentScorer scorer(sc, query);
    doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
      const double q = scorer.qic(u);
      const double mq = scorer.mqic(u);
      MOBIWEB_FUZZ_ASSERT(q >= -1e-12 && q <= 1.0 + 1e-9, "QIC out of range");
      MOBIWEB_FUZZ_ASSERT(mq >= -1e-12 && mq <= 1.0 + 1e-9, "MQIC out of range");
    });
    MOBIWEB_FUZZ_ASSERT(std::fabs(scorer.mqic(sc.root()) - 1.0) < 1e-9,
                        "MQIC root not normalized");
  }
  return 0;
}
