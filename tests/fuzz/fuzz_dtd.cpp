// Fuzz target: the DTD parser and validator — the document server's schema
// surface. Malformed declaration text must raise xml::ParseError; an accepted
// DTD must be usable: validating a small fixed document against it must
// terminate without crashing, and validating the same tree twice must be
// deterministic.
#include <cstdint>
#include <string_view>

#include "fuzz_input.hpp"
#include "xml/dtd.hpp"
#include "xml/parser.hpp"

namespace xml = mobiweb::xml;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 14)) return 0;  // content-model matching is backtracking
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  xml::dtd::Dtd dtd;
  try {
    dtd = xml::dtd::parse_dtd(text);
  } catch (const xml::ParseError&) {
    return 0;
  }

  static const xml::Document kDoc = xml::parse(
      "<research-paper><title>t</title><abstract><para>a</para></abstract>"
      "<section><title>s</title><para>p <em>e</em></para>"
      "<subsection><para>q</para></subsection></section></research-paper>");
  const auto first = xml::dtd::validate(kDoc, dtd);
  const auto second = xml::dtd::validate(kDoc, dtd);
  MOBIWEB_FUZZ_ASSERT(first == second, "validation is not deterministic");
  return 0;
}
