// Shared structured-input provider for the fuzz harnesses.
//
// Every harness under tests/fuzz/ carves its typed inputs (sizes, indices,
// payload bytes) out of the raw fuzzer byte buffer through this one reader —
// a small FuzzedDataProvider. Keeping the decoding convention uniform means
// seed corpora stay meaningful across harness revisions and a minimizer can
// shrink inputs without breaking their structure.
//
// Exhaustion is not an error: a drained provider hands out zeros, so every
// byte string decodes to *some* structured input and the fuzzer never wastes
// executions on "too short" rejects.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace mobiweb::fuzz {

class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool empty() const { return pos_ >= size_; }

  std::uint8_t take_byte() { return empty() ? 0 : data_[pos_++]; }

  bool take_bool() { return (take_byte() & 1) != 0; }

  // Value in [lo, hi], consuming just enough bytes to cover the span. The
  // modulo bias is irrelevant for fuzzing purposes.
  std::uint64_t take_in_range(std::uint64_t lo, std::uint64_t hi) {
    if (lo >= hi) return lo;
    const std::uint64_t span = hi - lo + 1;
    std::uint64_t value = 0;
    std::uint64_t covered = 1;
    while (covered != 0 && covered < span) {
      value = (value << 8) | take_byte();
      covered <<= 8;
    }
    return lo + value % span;
  }

  std::size_t take_index(std::size_t bound) {  // in [0, bound); bound >= 1
    return static_cast<std::size_t>(take_in_range(0, bound - 1));
  }

  // Exactly n bytes, zero-padded once the buffer drains.
  std::vector<std::uint8_t> take_bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n, 0);
    const std::size_t have = n < remaining() ? n : remaining();
    for (std::size_t i = 0; i < have; ++i) out[i] = data_[pos_ + i];
    pos_ += have;
    return out;
  }

  std::vector<std::uint8_t> take_remaining() { return take_bytes(remaining()); }

  std::string take_string(std::size_t max_len) {
    const std::size_t n =
        static_cast<std::size_t>(take_in_range(0, max_len < remaining() ? max_len : remaining()));
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<char>(take_byte()));
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace mobiweb::fuzz

// Oracle check: a failed condition is a finding, not a malformed input —
// abort so both libFuzzer and the corpus-replay driver flag it.
#define MOBIWEB_FUZZ_ASSERT(cond, msg)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "fuzz oracle failed: %s (%s at %s:%d)\n", msg,  \
                   #cond, __FILE__, __LINE__);                             \
      std::abort();                                                        \
    }                                                                      \
  } while (false)
