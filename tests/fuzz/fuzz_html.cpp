// Fuzz target: the HTML tokenizer and structurer on arbitrary tag soup.
// Both are documented never to throw — malformed markup degrades to text the
// way browsers degrade it — so *any* escaping exception is a finding. The
// structurer's output must stay a well-formed organizational-unit tree:
// monotonically deepening LODs, bounded by the paragraph level.
#include <cstdint>
#include <string_view>

#include "doc/lod.hpp"
#include "doc/unit.hpp"
#include "fuzz_input.hpp"
#include "html/structurer.hpp"
#include "html/tokenizer.hpp"

namespace html = mobiweb::html;
namespace doc = mobiweb::doc;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 18)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  // Entity decoding never grows the input: every entity form is at least as
  // long as its replacement and other bytes pass through one-for-one.
  const std::string decoded = html::decode_entities(text);
  MOBIWEB_FUZZ_ASSERT(decoded.size() <= text.size(),
                      "decode_entities grew the input");

  const auto tokens = html::tokenize(text);
  for (const auto& token : tokens) {
    if (token.type == html::TokenType::kStartTag ||
        token.type == html::TokenType::kEndTag) {
      MOBIWEB_FUZZ_ASSERT(!token.name.empty(), "tag token with empty name");
    }
  }

  const doc::OrgUnit root = html::structure_html(text);
  MOBIWEB_FUZZ_ASSERT(root.lod == doc::Lod::kDocument,
                      "structurer root is not a document unit");
  doc::walk(root, [](const doc::OrgUnit& unit, const std::vector<std::size_t>& path) {
    MOBIWEB_FUZZ_ASSERT(path.size() <= 4,
                        "unit tree deeper than document..paragraph");
    for (const auto& child : unit.children) {
      MOBIWEB_FUZZ_ASSERT(static_cast<int>(child.lod) > static_cast<int>(unit.lod),
                          "child unit does not deepen the LOD");
    }
  });
  return 0;
}
