// Corpus-regression driver: compiles any LLVMFuzzerTestOneInput harness into
// a plain executable that replays files (or whole directories of files) given
// on the command line. This is how tier-1 CI exercises the seed corpora on
// every build, with no clang/libFuzzer requirement — the same harness source
// links against -fsanitize=fuzzer when MOBIWEB_FUZZ is ON.
//
// Exit status: 0 after replaying at least one input; 2 when no inputs were
// found (a wrong corpus path must fail loudly, not pass vacuously). A crash
// or escaping exception in the harness terminates with the offending file
// named on stderr.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg, ec)) {
      inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "fuzz replay: no such input: %s\n", arg.c_str());
      return 2;
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "fuzz replay: no corpus inputs found\n");
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());

  for (const auto& path : inputs) {
    const std::vector<std::uint8_t> data = read_file(path);
    try {
      LLVMFuzzerTestOneInput(data.data(), data.size());
    } catch (...) {
      std::fprintf(stderr, "fuzz replay: harness threw on %s\n", path.c_str());
      throw;  // terminate with a nonzero exit so ctest records the failure
    }
  }
  std::printf("fuzz replay: %zu inputs ok\n", inputs.size());
  return 0;
}
