// Fuzz target: xml::parse on arbitrary bytes — the proxy's document-ingest
// surface. A ParseError is the correct answer for malformed input; anything
// else that escapes (crash, other exception type) is a finding. Accepted
// documents must additionally survive the serialize→reparse round trip with
// an identical tree, and serialization must be a fixed point.
#include <cstdint>
#include <string_view>

#include "fuzz_input.hpp"
#include "xml/parser.hpp"
#include "xml/serialize.hpp"

namespace xml = mobiweb::xml;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 20)) return 0;  // depth/size limits are tested; RAM is not
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  xml::Document doc;
  try {
    doc = xml::parse(text);
  } catch (const xml::ParseError&) {
    // Malformed input must also be rejected consistently by the lenient
    // option combinations, never crash them.
    try {
      (void)xml::parse(text, {.keep_comments = false, .strip_whitespace_text = true});
    } catch (const xml::ParseError&) {
    }
    try {
      (void)xml::parse_fragment(text);
    } catch (const xml::ParseError&) {
    }
    return 0;
  }

  // Round-trip oracle: write → parse must succeed and reproduce the tree.
  const std::string written = xml::write(doc);
  xml::Document again;
  try {
    again = xml::parse(written);
  } catch (const xml::ParseError&) {
    MOBIWEB_FUZZ_ASSERT(false, "serialized document failed to reparse");
  }
  MOBIWEB_FUZZ_ASSERT(again.root == doc.root, "round trip changed the tree");
  MOBIWEB_FUZZ_ASSERT(xml::write(again) == written,
                      "serialization is not a fixed point");

  // Option variants on well-formed input must also succeed.
  try {
    (void)xml::parse(text, {.keep_comments = false, .strip_whitespace_text = true});
  } catch (const xml::ParseError&) {
    MOBIWEB_FUZZ_ASSERT(false, "strict parse accepted but lenient options rejected");
  }
  return 0;
}
