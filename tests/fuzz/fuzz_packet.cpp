// Fuzz target: packet::decode and ClientReceiver::on_frame — the bytes a
// client pulls off the lossy 19.2 kbps channel. Three modes share the input:
//
//   0: decode arbitrary bytes as a frame; whatever decodes must re-encode to
//      a frame that decodes to the identical packet (decode∘encode identity);
//   1: build a valid packet, encode it, decode it back, then flip one byte —
//      CRC32 detects every single-byte error, so the damaged frame must be
//      rejected;
//   2: stream arbitrary frames into a ClientReceiver and check that the
//      frame accounting stays consistent (classification is exclusive,
//      counters sum, corruption estimate stays in [0, 1]).
#include <cstdint>
#include <vector>

#include "fuzz_input.hpp"
#include "packet/packet.hpp"
#include "transmit/receiver.hpp"

namespace packet = mobiweb::packet;
namespace transmit = mobiweb::transmit;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::fuzz::FuzzInput;

namespace {

void check_decoded_invariants(const packet::Packet& p) {
  MOBIWEB_FUZZ_ASSERT(p.total > 0, "decoded packet with total == 0");
  MOBIWEB_FUZZ_ASSERT(p.seq < p.total, "decoded packet with seq >= total");
  MOBIWEB_FUZZ_ASSERT(p.payload.size() <= packet::kMaxPayloadSize,
                      "decoded payload above kMaxPayloadSize");
}

void mode_raw_decode(FuzzInput& in) {
  const Bytes frame = in.take_remaining();
  const auto decoded = packet::decode(ByteSpan(frame));
  if (!decoded) return;
  check_decoded_invariants(*decoded);
  const Bytes reencoded = packet::encode(*decoded);
  const auto again = packet::decode(ByteSpan(reencoded));
  MOBIWEB_FUZZ_ASSERT(again.has_value(), "re-encoded frame failed to decode");
  MOBIWEB_FUZZ_ASSERT(*again == *decoded, "decode/encode identity broken");
}

void mode_bitflip(FuzzInput& in) {
  packet::Packet p;
  p.doc_id = static_cast<std::uint16_t>(in.take_in_range(0, 0xffff));
  p.total = static_cast<std::uint16_t>(in.take_in_range(1, 0xffff));
  p.seq = static_cast<std::uint16_t>(in.take_index(p.total));
  p.flags = static_cast<std::uint16_t>(in.take_in_range(0, 3));
  p.payload = in.take_bytes(in.take_in_range(0, 512));

  const Bytes frame = packet::encode(p);
  const auto decoded = packet::decode(ByteSpan(frame));
  MOBIWEB_FUZZ_ASSERT(decoded.has_value(), "valid frame failed to decode");
  MOBIWEB_FUZZ_ASSERT(*decoded == p, "valid frame decoded differently");

  Bytes damaged = frame;
  const std::size_t at = in.take_index(damaged.size());
  const auto mask = static_cast<std::uint8_t>(in.take_in_range(1, 255));
  damaged[at] ^= mask;
  MOBIWEB_FUZZ_ASSERT(!packet::decode(ByteSpan(damaged)).has_value(),
                      "single-byte corruption slipped past the CRC");
}

void mode_receiver(FuzzInput& in) {
  transmit::ReceiverConfig config;
  config.doc_id = static_cast<std::uint16_t>(in.take_in_range(1, 4));
  config.m = in.take_in_range(1, 8);
  config.n = config.m + in.take_in_range(0, 8);
  config.packet_size = in.take_in_range(1, 64);
  config.payload_size = in.take_in_range((config.m - 1) * config.packet_size + 1,
                                         config.m * config.packet_size);
  config.caching = in.take_bool();
  transmit::ClientReceiver receiver(config, {});

  const std::size_t frames = in.take_in_range(0, 32);
  long intact = 0;
  long corrupted = 0;
  long foreign = 0;
  for (std::size_t i = 0; i < frames && !in.empty(); ++i) {
    Bytes frame;
    if (in.take_bool()) {
      // A frame off the wire: often valid for this very transfer.
      packet::Packet p;
      p.doc_id = static_cast<std::uint16_t>(in.take_in_range(1, 4));
      p.total = static_cast<std::uint16_t>(in.take_in_range(1, 2 * config.n));
      p.seq = static_cast<std::uint16_t>(in.take_index(p.total));
      p.payload = in.take_bytes(in.take_in_range(0, config.packet_size + 2));
      frame = packet::encode(p);
      if (in.take_bool()) {  // sometimes corrupt it on the air
        frame[in.take_index(frame.size())] ^=
            static_cast<std::uint8_t>(in.take_in_range(1, 255));
      }
    } else {
      frame = in.take_bytes(in.take_in_range(0, 48));
    }
    const auto result = receiver.on_frame(ByteSpan(frame));
    const int classes = (result.intact ? 1 : 0) + (result.corrupted ? 1 : 0) +
                        (result.foreign ? 1 : 0);
    MOBIWEB_FUZZ_ASSERT(classes == 1, "frame classification not exclusive");
    if (result.intact) ++intact;
    if (result.corrupted) ++corrupted;
    if (result.foreign) ++foreign;
    if (in.take_bool()) receiver.on_round_end();
  }
  MOBIWEB_FUZZ_ASSERT(receiver.frames_seen() == intact + corrupted + foreign,
                      "frame counters do not sum");
  MOBIWEB_FUZZ_ASSERT(receiver.frames_corrupted() == corrupted,
                      "corrupted counter mismatch");
  MOBIWEB_FUZZ_ASSERT(receiver.frames_foreign() == foreign,
                      "foreign counter mismatch");
  const double rate = receiver.observed_corruption_rate();
  MOBIWEB_FUZZ_ASSERT(rate >= 0.0 && rate <= 1.0,
                      "corruption rate outside [0, 1]");
  // The decoder holds every clear-text packet (< m) plus at most m - 1
  // redundancy packets buffered before the clear prefix filled in.
  MOBIWEB_FUZZ_ASSERT(receiver.intact_count() < 2 * config.m + 1,
                      "decoder holds more packets than it can ever use");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 18)) return 0;
  FuzzInput in(data, size);
  switch (in.take_in_range(0, 2)) {
    case 0: mode_raw_decode(in); break;
    case 1: mode_bitflip(in); break;
    default: mode_receiver(in); break;
  }
  return 0;
}
