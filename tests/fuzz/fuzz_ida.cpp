// Fuzz target: the IDA erasure-coding pipeline with arbitrary share subsets,
// plus the serial-vs-parallel differential oracle. The provider picks a
// shape (m, n, packet_size), a payload, and a permutation of cooked-packet
// indices; the harness checks that
//
//   * serial and row-sharded parallel encode/decode produce identical bytes;
//   * ANY m distinct cooked packets reconstruct the payload exactly;
//   * the streaming decoder reaches the same payload through out-of-order,
//     duplicated arrivals;
//   * fewer than m distinct packets is rejected with ContractViolation.
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "fuzz_input.hpp"
#include "ida/ida.hpp"
#include "util/check.hpp"

namespace ida = mobiweb::ida;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using mobiweb::fuzz::FuzzInput;

namespace {

// Runs fn with the parallel path forced off, then forced on, and checks both
// produce the same result. Restores the threshold afterwards.
template <typename Fn>
auto serial_vs_parallel(Fn&& fn) {
  const std::size_t old = ida::set_parallel_threshold(static_cast<std::size_t>(-1));
  auto serial = fn();
  ida::set_parallel_threshold(0);
  auto parallel = fn();
  ida::set_parallel_threshold(old);
  MOBIWEB_FUZZ_ASSERT(serial == parallel,
                      "serial and parallel paths produced different bytes");
  return serial;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 16)) return 0;
  FuzzInput in(data, size);

  const std::size_t m = in.take_in_range(1, 12);
  const std::size_t n = m + in.take_in_range(0, 12);
  const std::size_t packet_size = in.take_in_range(1, 48);
  const std::size_t payload_size =
      in.take_in_range((m - 1) * packet_size + 1, m * packet_size);
  const Bytes payload = in.take_bytes(payload_size);

  const ida::Encoder enc(m, n);
  const std::vector<Bytes> cooked = serial_vs_parallel(
      [&] { return enc.encode_payload(ByteSpan(payload), packet_size); });
  MOBIWEB_FUZZ_ASSERT(cooked.size() == n, "encoder produced wrong share count");
  for (std::size_t i = 0; i < m; ++i) {
    // Systematic prefix: clear-text shares are the raw packets themselves.
    const std::size_t begin = i * packet_size;
    for (std::size_t k = 0; k < packet_size; ++k) {
      const std::uint8_t expect =
          begin + k < payload.size() ? payload[begin + k] : 0;
      MOBIWEB_FUZZ_ASSERT(cooked[i][k] == expect,
                          "systematic share differs from raw payload");
    }
  }

  // Fisher–Yates permutation of the cooked indices, driven by the provider.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[in.take_index(i + 1)]);
  }

  std::vector<std::pair<std::size_t, Bytes>> kept;
  for (std::size_t i = 0; i < m; ++i) kept.emplace_back(order[i], cooked[order[i]]);
  // Duplicates must be ignored, not counted toward the m required shares.
  if (in.take_bool() && !kept.empty()) kept.push_back(kept.front());

  const ida::Decoder dec(m, n);
  const Bytes decoded = serial_vs_parallel(
      [&] { return dec.decode_payload(kept, payload.size()); });
  MOBIWEB_FUZZ_ASSERT(decoded == payload,
                      "decode from an arbitrary m-subset lost the payload");

  // Streaming decoder: same shares, arbitrary arrival order with duplicates.
  ida::StreamingDecoder stream(m, n, packet_size, payload.size());
  for (const auto& [index, bytes] : kept) {
    stream.add(index, ByteSpan(bytes));
    if (in.take_bool()) stream.add(index, ByteSpan(bytes));  // duplicate
  }
  MOBIWEB_FUZZ_ASSERT(stream.complete(), "m distinct shares did not complete");
  MOBIWEB_FUZZ_ASSERT(stream.reconstruct() == payload,
                      "streaming reconstruction differs");

  // Starvation: m - 1 distinct shares must be rejected, never mis-decode.
  if (m > 1) {
    std::vector<std::pair<std::size_t, Bytes>> starved(kept.begin(),
                                                       kept.begin() + (m - 1));
    bool rejected = false;
    try {
      (void)dec.decode_payload(starved, payload.size());
    } catch (const ContractViolation&) {
      rejected = true;
    }
    MOBIWEB_FUZZ_ASSERT(rejected, "decode accepted fewer than m shares");
  }
  return 0;
}
