// Fuzz target: doc::parse_sc — the client's structural-characteristic
// metadata surface. Contract: malformed input raises xml::ParseError (bad
// XML) or std::invalid_argument (schema violation); accepted SCs must round
// trip through write_sc/parse_sc preserving every unit's label, term index
// and (recomputed) information content.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "doc/content.hpp"
#include "doc/sc_io.hpp"
#include "fuzz_input.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 18)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  doc::StructuralCharacteristic sc;
  try {
    sc = doc::parse_sc(text);
  } catch (const mobiweb::xml::ParseError&) {
    return 0;
  } catch (const std::invalid_argument&) {
    return 0;
  }

  // Static IC invariants on whatever tree was accepted.
  if (sc.document_terms().total() > 0) {
    MOBIWEB_FUZZ_ASSERT(std::fabs(sc.root().info_content - 1.0) < 1e-9,
                        "root IC of a non-empty SC is not 1");
  }
  doc::walk(sc.root(), [](const doc::OrgUnit& unit, const std::vector<std::size_t>&) {
    MOBIWEB_FUZZ_ASSERT(unit.info_content >= -1e-12, "negative IC");
    MOBIWEB_FUZZ_ASSERT(unit.info_content <= 1.0 + 1e-9, "IC above 1");
  });

  // Round trip: what we accepted must serialize and parse back identically.
  doc::StructuralCharacteristic restored;
  try {
    restored = doc::parse_sc(doc::write_sc(sc));
  } catch (...) {
    MOBIWEB_FUZZ_ASSERT(false, "write_sc output failed to reparse");
  }
  const auto a = sc.rows();
  const auto b = restored.rows();
  MOBIWEB_FUZZ_ASSERT(a.size() == b.size(), "round trip changed the unit count");
  for (std::size_t i = 0; i < a.size(); ++i) {
    MOBIWEB_FUZZ_ASSERT(a[i].label == b[i].label, "round trip changed a label");
    MOBIWEB_FUZZ_ASSERT(
        std::fabs(a[i].unit->info_content - b[i].unit->info_content) < 1e-9,
        "round trip changed an IC");
    MOBIWEB_FUZZ_ASSERT(a[i].unit->terms.counts == b[i].unit->terms.counts,
                        "round trip changed a term index");
  }
  return 0;
}
