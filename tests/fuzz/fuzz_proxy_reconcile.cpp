// Fuzz target: proxy::reconcile — the decision that determines which cached
// cooked packets a reconnecting client may keep. The edge tier's safety
// property rides on this function: a stale packet (one whose generation
// record disagrees with the serving replica's) must NEVER survive into the
// kept set, no matter how adversarial the bitmap / record list combination.
//
// Input layout (truncated tails are fine — the provider zero-pads):
//   8 bytes   replica generation (LE)
//   32 bytes  held bitmap (4 x u64 LE)
//   12 bytes  per record: u32 unit (LE) + u64 generation (LE), repeated
//
// The oracle recomputes the conservative keep rule naively (per held unit:
// kept iff covered by >= 1 record and every covering record matches) and
// demands the production result agree exactly, plus the structural
// invariants: kept/refetch ascending and disjoint, together a partition of
// the held set, and the result bitmap == the kept set.
#include <cstdint>
#include <vector>

#include "fuzz_input.hpp"
#include "proxy/reconcile.hpp"

using mobiweb::fuzz::FuzzInput;
using mobiweb::proxy::CachedUnit;
using mobiweb::proxy::kReconcileUnits;
using mobiweb::proxy::PartialBitmap;
using mobiweb::proxy::ReconcileResult;

namespace {

std::uint64_t take_u64(FuzzInput& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in.take_byte()) << (8 * i);
  }
  return v;
}

std::uint32_t take_u32(FuzzInput& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in.take_byte()) << (8 * i);
  }
  return v;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 16)) return 0;
  FuzzInput in(data, size);

  const std::uint64_t replica_generation = take_u64(in);
  PartialBitmap held;
  for (std::uint64_t& word : held.words) word = take_u64(in);

  std::vector<CachedUnit> entries;
  while (in.remaining() >= 12) {
    entries.push_back({take_u32(in), take_u64(in)});
  }

  const ReconcileResult r =
      mobiweb::proxy::reconcile(held, entries, replica_generation);

  // Naive reference: per held unit, kept iff >= 1 covering record and no
  // covering record disagrees with the serving generation.
  PartialBitmap expected_kept;
  std::vector<std::uint32_t> expected_refetch;
  for (std::uint32_t unit = 0; unit < kReconcileUnits; ++unit) {
    if (!held.test(unit)) continue;
    bool covered = false;
    bool mismatched = false;
    for (const CachedUnit& e : entries) {
      if (e.unit != unit) continue;
      covered = true;
      if (e.generation != replica_generation) mismatched = true;
    }
    if (covered && !mismatched) {
      expected_kept.set(unit);
    } else {
      expected_refetch.push_back(unit);
    }
  }

  // THE safety property: no stale (or unprovenanced) unit survives as kept.
  for (const std::uint32_t unit : r.kept) {
    MOBIWEB_FUZZ_ASSERT(expected_kept.test(unit),
                        "stale or unprovenanced unit survived into kept");
  }
  MOBIWEB_FUZZ_ASSERT(r.bitmap == expected_kept,
                      "result bitmap disagrees with the reference keep rule");
  MOBIWEB_FUZZ_ASSERT(r.refetch == expected_refetch,
                      "refetch list disagrees with the reference keep rule");

  // Structural invariants: ascending, disjoint, and a partition of held.
  PartialBitmap seen;
  std::uint32_t prev = 0;
  bool first = true;
  for (const std::uint32_t unit : r.kept) {
    MOBIWEB_FUZZ_ASSERT(unit < kReconcileUnits, "kept unit out of range");
    MOBIWEB_FUZZ_ASSERT(first || unit > prev, "kept list not ascending");
    MOBIWEB_FUZZ_ASSERT(held.test(unit), "kept unit was never held");
    MOBIWEB_FUZZ_ASSERT(r.bitmap.test(unit), "kept unit missing from bitmap");
    seen.set(unit);
    prev = unit;
    first = false;
  }
  first = true;
  for (const std::uint32_t unit : r.refetch) {
    MOBIWEB_FUZZ_ASSERT(unit < kReconcileUnits, "refetch unit out of range");
    MOBIWEB_FUZZ_ASSERT(first || unit > prev, "refetch list not ascending");
    MOBIWEB_FUZZ_ASSERT(held.test(unit), "refetch unit was never held");
    MOBIWEB_FUZZ_ASSERT(!seen.test(unit), "unit in both kept and refetch");
    MOBIWEB_FUZZ_ASSERT(!r.bitmap.test(unit),
                        "refetch unit still set in the bitmap");
    seen.set(unit);
    prev = unit;
    first = false;
  }
  MOBIWEB_FUZZ_ASSERT(seen == held, "kept + refetch is not a partition of held");
  MOBIWEB_FUZZ_ASSERT(r.bitmap.count() ==
                          static_cast<std::uint32_t>(r.kept.size()),
                      "bitmap population disagrees with kept size");
  return 0;
}
