// Fuzz target: differential check of the GF(2^8) row kernels. All kernel
// implementations (scalar log/exp, per-coefficient table, split-nibble,
// SIMD pshufb/tbl) are documented to produce byte-identical output; the
// scalar kernel is the reference. Also exercises the field's algebraic
// identities on arbitrary elements.
#include <cstdint>
#include <vector>

#include "fuzz_input.hpp"
#include "gf256/gf256.hpp"

namespace gf = mobiweb::gf;
using mobiweb::fuzz::FuzzInput;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 16)) return 0;
  FuzzInput in(data, size);

  const auto c = static_cast<gf::Elem>(in.take_byte());
  const auto a = static_cast<gf::Elem>(in.take_byte());
  const auto b = static_cast<gf::Elem>(in.take_byte());

  // Field identities.
  MOBIWEB_FUZZ_ASSERT(gf::mul(a, b) == gf::mul(b, a), "mul not commutative");
  MOBIWEB_FUZZ_ASSERT(gf::add(a, b) == gf::sub(a, b), "add/sub must coincide");
  MOBIWEB_FUZZ_ASSERT(gf::mul(a, 1) == a, "1 is not the multiplicative unit");
  if (a != 0) {
    MOBIWEB_FUZZ_ASSERT(gf::mul(a, gf::inv(a)) == 1, "a * inv(a) != 1");
  }
  if (b != 0) {
    MOBIWEB_FUZZ_ASSERT(gf::div(gf::mul(a, b), b) == a, "(a*b)/b != a");
  }
  // pow against repeated multiplication, including exponents past 255 where
  // the log-sum wraps mod 255.
  const unsigned e = static_cast<unsigned>(in.take_in_range(0, 600));
  gf::Elem expect = 1;
  for (unsigned i = 0; i < e; ++i) expect = gf::mul(expect, a);
  MOBIWEB_FUZZ_ASSERT(gf::pow(a, e) == expect, "pow differs from repeated mul");

  // Row-kernel differential: every available kernel vs the scalar reference,
  // on an arbitrary row at an arbitrary (often unaligned) length.
  const std::size_t row_len = in.take_in_range(0, 300);
  const std::vector<std::uint8_t> row = in.take_bytes(row_len);
  const std::vector<std::uint8_t> seed = in.take_bytes(row_len);

  std::vector<std::uint8_t> ref_add = seed;
  std::vector<std::uint8_t> ref_mul(row_len, 0);
  gf::mul_add_row(ref_add.data(), row.data(), c, row_len, gf::Kernel::kScalar);
  gf::mul_row(ref_mul.data(), row.data(), c, row_len, gf::Kernel::kScalar);

  for (const gf::Kernel k : {gf::Kernel::kMulTable, gf::Kernel::kSplitNibble,
                             gf::Kernel::kSimd, gf::Kernel::kAuto}) {
    if (!gf::kernel_available(k)) continue;
    std::vector<std::uint8_t> out_add = seed;
    std::vector<std::uint8_t> out_mul(row_len, 0);
    gf::mul_add_row(out_add.data(), row.data(), c, row_len, k);
    gf::mul_row(out_mul.data(), row.data(), c, row_len, k);
    MOBIWEB_FUZZ_ASSERT(out_add == ref_add, "mul_add_row kernel divergence");
    MOBIWEB_FUZZ_ASSERT(out_mul == ref_mul, "mul_row kernel divergence");
  }
  return 0;
}
