// Fuzz target: FaultSchedule — the fault-injection matrix and the sim CLI
// hand operator-typed schedule strings to FaultSchedule::parse, so the parser
// must reject arbitrary bytes gracefully (nullopt, never a crash or a
// ContractViolation). Mode 0 feeds raw bytes to parse(); mode 1 builds a
// window list from carved doubles and exercises the validating constructor
// (ContractViolation is the only acceptable rejection there). Whatever either
// path accepts must satisfy the normalization invariants — sorted, disjoint,
// non-empty, non-negative, finite windows — survive a to_string()/parse()
// round trip bit-exactly, and answer link_up() consistently with windows().
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "channel/outage.hpp"
#include "fuzz_input.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

using mobiweb::Rng;
using mobiweb::channel::FaultSchedule;
using mobiweb::fuzz::FuzzInput;

namespace {

bool in_any_window(const FaultSchedule& schedule, double time) {
  for (const FaultSchedule::Window& w : schedule.windows()) {
    if (time >= w.begin && time < w.end) return true;
  }
  return false;
}

void check_invariants(const FaultSchedule& schedule) {
  const std::vector<FaultSchedule::Window>& windows = schedule.windows();
  MOBIWEB_FUZZ_ASSERT(windows.size() <= FaultSchedule::kMaxWindows,
                      "accepted schedule exceeds kMaxWindows");
  double prev_end = -1.0;
  for (const FaultSchedule::Window& w : windows) {
    MOBIWEB_FUZZ_ASSERT(std::isfinite(w.begin) && std::isfinite(w.end),
                        "accepted window has non-finite bound");
    MOBIWEB_FUZZ_ASSERT(w.begin >= 0.0, "accepted window begins before 0");
    MOBIWEB_FUZZ_ASSERT(w.begin < w.end, "accepted window is empty");
    // Normalization merges touching windows, so gaps are strict.
    MOBIWEB_FUZZ_ASSERT(w.begin > prev_end,
                        "accepted windows overlap or touch out of order");
    prev_end = w.end;
  }
  MOBIWEB_FUZZ_ASSERT(schedule.total_outage_s() >= 0.0,
                      "total outage time is negative or NaN");
  const double fraction = schedule.outage_fraction();
  MOBIWEB_FUZZ_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                      "outage fraction outside [0,1]");
}

void check_round_trip(const FaultSchedule& schedule) {
  // %.17g round-trips IEEE doubles exactly, so reparsing must reproduce the
  // window list bit-for-bit — the matrix scripts rely on this to archive and
  // replay schedules.
  const std::optional<FaultSchedule> reparsed =
      FaultSchedule::parse(schedule.to_string());
  MOBIWEB_FUZZ_ASSERT(reparsed.has_value(),
                      "to_string() output failed to reparse");
  const auto& a = schedule.windows();
  const auto& b = reparsed->windows();
  MOBIWEB_FUZZ_ASSERT(a.size() == b.size(),
                      "round trip changed the window count");
  for (std::size_t i = 0; i < a.size(); ++i) {
    MOBIWEB_FUZZ_ASSERT(a[i].begin == b[i].begin && a[i].end == b[i].end,
                        "round trip perturbed a window bound");
  }
}

void check_link_up(FaultSchedule& schedule) {
  // Probe each window's begin / midpoint / end in order; the probes are
  // non-decreasing because normalized windows are sorted and disjoint. The
  // expectation is recomputed from the probed time itself so midpoint
  // rounding (begin + gap/2 landing on end for ulp-wide windows) cannot
  // desynchronize oracle and subject.
  Rng rng(1);
  std::vector<double> probes;
  probes.push_back(0.0);
  for (const FaultSchedule::Window& w : schedule.windows()) {
    if (probes.size() > 64) break;
    probes.push_back(w.begin);
    probes.push_back(w.begin + (w.end - w.begin) / 2.0);
    probes.push_back(w.end);
  }
  for (const double t : probes) {
    MOBIWEB_FUZZ_ASSERT(schedule.link_up(t, rng) == !in_any_window(schedule, t),
                        "link_up disagrees with window membership");
  }
}

FaultSchedule from_parse(FuzzInput& in, bool& accepted) {
  const std::vector<std::uint8_t> raw = in.take_remaining();
  const std::string text(raw.begin(), raw.end());
  std::optional<FaultSchedule> parsed;
  // parse() is documented untrusted-input safe: a throw here is a finding.
  try {
    parsed = FaultSchedule::parse(text);
  } catch (...) {
    MOBIWEB_FUZZ_ASSERT(false, "parse threw on arbitrary bytes");
  }
  accepted = parsed.has_value();
  return accepted ? *parsed : FaultSchedule();
}

FaultSchedule from_ctor(FuzzInput& in, bool& accepted) {
  // Carve a handful of window bounds, occasionally poisoned with the exact
  // values the constructor's contract names (negative, infinite, NaN).
  const std::size_t count = in.take_index(9);
  std::vector<FaultSchedule::Window> windows;
  windows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto carve = [&in]() -> double {
      switch (in.take_index(8)) {
        case 0: return -std::numeric_limits<double>::infinity();
        case 1: return std::numeric_limits<double>::infinity();
        case 2: return std::numeric_limits<double>::quiet_NaN();
        case 3: return -static_cast<double>(in.take_in_range(0, 1u << 20)) / 64.0;
        default: return static_cast<double>(in.take_in_range(0, 1u << 20)) / 64.0;
      }
    };
    windows.push_back({carve(), carve()});
  }
  try {
    FaultSchedule schedule(std::move(windows));
    accepted = true;
    return schedule;
  } catch (const mobiweb::ContractViolation&) {
    accepted = false;  // documented rejection of bad bounds
    return FaultSchedule();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 16)) return 0;
  FuzzInput in(data, size);

  bool accepted = false;
  FaultSchedule schedule =
      in.take_bool() ? from_ctor(in, accepted) : from_parse(in, accepted);
  if (!accepted) return 0;

  check_invariants(schedule);
  check_round_trip(schedule);
  check_link_up(schedule);
  return 0;
}
