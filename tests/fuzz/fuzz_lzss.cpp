// Fuzz target: LZSS — the compression interceptor's decode path takes bytes
// straight off the wire. Mode 0 feeds arbitrary bytes to the decompressor
// (std::invalid_argument is the only acceptable rejection; whatever it
// accepts must survive a compress→decompress round trip). Mode 1 checks the
// compress→decompress identity and the documented worst-case bound on
// arbitrary payloads.
#include <cstdint>
#include <stdexcept>

#include "fuzz_input.hpp"
#include "util/lzss.hpp"

using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::fuzz::FuzzInput;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 18)) return 0;
  FuzzInput in(data, size);

  if (in.take_bool()) {
    const Bytes stream = in.take_remaining();
    Bytes plain;
    try {
      plain = mobiweb::lzss_decompress(ByteSpan(stream));
    } catch (const std::invalid_argument&) {
      return 0;
    }
    const Bytes recompressed = mobiweb::lzss_compress(ByteSpan(plain));
    MOBIWEB_FUZZ_ASSERT(mobiweb::lzss_decompress(ByteSpan(recompressed)) == plain,
                        "recompression of accepted output lost bytes");
  } else {
    const Bytes plain = in.take_remaining();
    const Bytes packed = mobiweb::lzss_compress(ByteSpan(plain));
    MOBIWEB_FUZZ_ASSERT(packed.size() <= 4 + plain.size() + plain.size() / 8 + 1,
                        "compression exceeded its worst-case bound");
    MOBIWEB_FUZZ_ASSERT(mobiweb::lzss_decompress(ByteSpan(packed)) == plain,
                        "compress/decompress round trip lost bytes");
  }
  return 0;
}
