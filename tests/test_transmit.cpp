// Transmitter, receiver, transfer session, adaptive gamma.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "analysis/negbinom.hpp"
#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "obs/trace.hpp"
#include "transmit/adaptive.hpp"
#include "transmit/receiver.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace obs = mobiweb::obs;
namespace xml = mobiweb::xml;
namespace transmit = mobiweb::transmit;
namespace channel = mobiweb::channel;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using mobiweb::Rng;

namespace {

doc::LinearDocument make_linear(std::size_t paragraphs = 12,
                                std::size_t words_per_para = 40) {
  std::string src = "<paper>";
  for (std::size_t p = 0; p < paragraphs; ++p) {
    src += "<para>";
    for (std::size_t w = 0; w < words_per_para; ++w) {
      src += "word" + std::to_string(p) + "x" + std::to_string(w) + " ";
    }
    src += "</para>";
  }
  src += "</paper>";
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(src));
  return doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
}

channel::WirelessChannel make_channel(double alpha, std::uint64_t seed = 1) {
  channel::ChannelConfig cfg;
  cfg.seed = seed;
  return channel::WirelessChannel(cfg,
                                  std::make_unique<channel::IidErrorModel>(alpha));
}

transmit::ReceiverConfig receiver_config(const transmit::DocumentTransmitter& tx,
                                         bool caching = true) {
  transmit::ReceiverConfig rc;
  rc.doc_id = tx.doc_id();
  rc.m = tx.m();
  rc.n = tx.n();
  rc.packet_size = tx.packet_size();
  rc.payload_size = tx.payload_size();
  rc.caching = caching;
  return rc;
}

// Corrupts exactly the first `corrupt_first` packets sent, then goes clean —
// lets tests script where in a session the losses fall.
class ScriptedErrorModel final : public channel::ErrorModel {
 public:
  explicit ScriptedErrorModel(long corrupt_first) : remaining_(corrupt_first) {}

  bool next_corrupted(Rng&) override {
    if (remaining_ <= 0) return false;
    --remaining_;
    return true;
  }
  [[nodiscard]] double steady_state_rate() const override { return 0.0; }
  [[nodiscard]] std::unique_ptr<channel::ErrorModel> clone() const override {
    return std::make_unique<ScriptedErrorModel>(remaining_);
  }

 private:
  long remaining_;
};

}  // namespace

TEST(CookedCount, GammaMath) {
  EXPECT_EQ(transmit::cooked_count(40, 1.5), 60u);
  EXPECT_EQ(transmit::cooked_count(40, 1.0), 40u);
  EXPECT_EQ(transmit::cooked_count(40, 1.01), 41u);  // ceil
  EXPECT_EQ(transmit::cooked_count(200, 2.0), 255u); // clamped
  EXPECT_THROW(transmit::cooked_count(40, 0.5), ContractViolation);
}

TEST(Transmitter, FramesWellFormed) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5,
                                         .doc_id = 3});
  EXPECT_EQ(tx.n(), transmit::cooked_count(tx.m(), 1.5));
  ASSERT_EQ(tx.frames().size(), tx.n());
  for (std::size_t i = 0; i < tx.n(); ++i) {
    const auto p = mobiweb::packet::decode(ByteSpan(tx.frame(i)));
    ASSERT_TRUE(p.has_value()) << i;
    EXPECT_EQ(p->doc_id, 3);
    EXPECT_EQ(p->seq, i);
    EXPECT_EQ(p->total, tx.n());
    EXPECT_EQ(p->is_clear_text(), i < tx.m());
    EXPECT_EQ(p->is_last(), i + 1 == tx.n());
    EXPECT_EQ(p->payload.size(), 128u);
  }
}

TEST(Transmitter, ClearTextPrefixMatchesPayload) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5,
                                         .doc_id = 1});
  // Concatenating the clear-text packets reproduces the payload (+ padding).
  Bytes clear;
  for (std::size_t i = 0; i < tx.m(); ++i) {
    const auto p = mobiweb::packet::decode(ByteSpan(tx.frame(i)));
    clear.insert(clear.end(), p->payload.begin(), p->payload.end());
  }
  ASSERT_GE(clear.size(), lin.payload.size());
  EXPECT_TRUE(std::equal(lin.payload.begin(), lin.payload.end(), clear.begin()));
}

TEST(Transmitter, RejectsOversizedDocument) {
  doc::LinearDocument huge;
  huge.payload.assign(256 * 300, 1);  // needs 300 raw packets
  huge.segments.push_back({"0", 0, huge.payload.size(), 1.0});
  EXPECT_THROW(
      transmit::DocumentTransmitter(huge, {.packet_size = 256, .gamma = 1.5}),
      ContractViolation);
}

TEST(Session, CleanChannelSendsExactlyM) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  auto ch = make_channel(0.0);
  transmit::TransferSession session(tx, rx, ch);
  const auto result = session.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.frames_sent, static_cast<long>(tx.m()));
  EXPECT_EQ(result.rounds, 1);
  EXPECT_NEAR(result.response_time,
              static_cast<double>(tx.m()) * ch.transmit_time(tx.frame(0).size()),
              1e-9);
  // Reconstruction gives back the exact payload.
  EXPECT_EQ(rx.reconstruct(), lin.payload);
}

TEST(Session, LossyChannelRecovers) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 2.0});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  auto ch = make_channel(0.3, 77);
  transmit::TransferSession session(tx, rx, ch);
  const auto result = session.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(rx.reconstruct(), lin.payload);
  EXPECT_GT(result.frames_sent, static_cast<long>(tx.m()));
}

TEST(Session, CachingSurvivesStalledRounds) {
  const auto lin = make_linear();
  // gamma = 1: no redundancy, so a single corruption stalls the round and
  // forces retransmission; caching should finish in few rounds.
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx(receiver_config(tx, /*caching=*/true), lin.segments);
  auto ch = make_channel(0.3, 123);
  transmit::TransferSession session(tx, rx, ch);
  const auto result = session.run();
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.rounds, 1);
  EXPECT_EQ(rx.reconstruct(), lin.payload);
}

TEST(Session, NoCachingNeedsAFullCleanRound) {
  // Small document (few packets) so a clean NoCaching round at alpha = 0.25
  // happens within a handful of retries.
  const auto lin = make_linear(4, 20);
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});

  auto run_with = [&](bool caching, std::uint64_t seed) {
    transmit::ClientReceiver rx(receiver_config(tx, caching), lin.segments);
    auto ch = make_channel(0.25, seed);
    transmit::TransferSession session(tx, rx, ch);
    return session.run();
  };
  // Across several seeds, NoCaching can never need fewer rounds than Caching
  // (same corruption pattern per seed).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto with_cache = run_with(true, seed);
    const auto without_cache = run_with(false, seed);
    ASSERT_TRUE(with_cache.completed);
    ASSERT_TRUE(without_cache.completed);
    EXPECT_LE(with_cache.rounds, without_cache.rounds) << "seed=" << seed;
  }
}

TEST(Session, IrrelevantDocumentAbortsEarly) {
  const auto lin = make_linear(24, 60);
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  auto ch = make_channel(0.0);
  transmit::SessionConfig cfg;
  cfg.relevance_threshold = 0.3;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  EXPECT_TRUE(result.aborted_irrelevant);
  EXPECT_GE(result.content_received, 0.3);
  EXPECT_LT(result.frames_sent, static_cast<long>(tx.m()));
}

TEST(Session, ZeroThresholdAbortsImmediately) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  auto ch = make_channel(0.0);
  transmit::SessionConfig cfg;
  cfg.relevance_threshold = 0.0;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  EXPECT_TRUE(result.aborted_irrelevant);
  EXPECT_EQ(result.frames_sent, 1);
}

TEST(Receiver, ContentAccruesWithClearPackets) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  EXPECT_EQ(rx.content_received(), 0.0);
  double prev = 0.0;
  for (std::size_t i = 0; i < tx.m(); ++i) {
    rx.on_frame(ByteSpan(tx.frame(i)));
    EXPECT_GE(rx.content_received(), prev);
    prev = rx.content_received();
  }
  EXPECT_TRUE(rx.complete());
  EXPECT_NEAR(rx.content_received(), lin.total_content(), 1e-9);
}

TEST(Receiver, RedundancyCompletionJumpsToFullContent) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 2.0});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  // Feed only redundancy packets (indices >= m): no clear content until the
  // decoder completes, then content snaps to the total.
  for (std::size_t i = tx.m(); i < 2 * tx.m() - 1; ++i) {
    rx.on_frame(ByteSpan(tx.frame(i)));
    EXPECT_EQ(rx.content_received(), 0.0);
  }
  rx.on_frame(ByteSpan(tx.frame(2 * tx.m() - 1)));
  EXPECT_TRUE(rx.complete());
  EXPECT_NEAR(rx.content_received(), lin.total_content(), 1e-9);
  EXPECT_EQ(rx.reconstruct(), lin.payload);
}

TEST(Receiver, CorruptedFramesCounted) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  Bytes bad = tx.frame(0);
  bad[3] ^= 0xff;
  const auto res = rx.on_frame(ByteSpan(bad));
  EXPECT_FALSE(res.intact);
  EXPECT_TRUE(res.corrupted);
  EXPECT_FALSE(res.foreign);
  EXPECT_EQ(rx.frames_corrupted(), 1);
  EXPECT_EQ(rx.frames_foreign(), 0);
  EXPECT_EQ(rx.intact_count(), 0u);
  EXPECT_DOUBLE_EQ(rx.observed_corruption_rate(), 1.0);
}

TEST(Receiver, ForeignDocIdRejected) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5,
                                         .doc_id = 9});
  auto rc = receiver_config(tx);
  rc.doc_id = 4;  // expecting a different document
  transmit::ClientReceiver rx(rc, lin.segments);
  const auto res = rx.on_frame(ByteSpan(tx.frame(0)));
  EXPECT_FALSE(res.intact);
  EXPECT_TRUE(res.foreign);
  EXPECT_FALSE(res.corrupted);
  // A frame of another transfer is not corruption: it must not leak into the
  // corruption counters that feed the adaptive-gamma estimate.
  EXPECT_EQ(rx.frames_corrupted(), 0);
  EXPECT_EQ(rx.frames_foreign(), 1);
  EXPECT_DOUBLE_EQ(rx.observed_corruption_rate(), 0.0);
}

TEST(Receiver, CorruptionRateIgnoresForeignFrames) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter own(lin, {.packet_size = 128, .gamma = 1.5,
                                          .doc_id = 1});
  transmit::DocumentTransmitter other(lin, {.packet_size = 128, .gamma = 1.5,
                                            .doc_id = 2});
  transmit::ClientReceiver rx(receiver_config(own), lin.segments);
  Bytes bad = own.frame(0);
  bad[5] ^= 0x42;
  rx.on_frame(ByteSpan(bad));                // corrupted (own)
  rx.on_frame(ByteSpan(own.frame(1)));       // intact
  rx.on_frame(ByteSpan(other.frame(0)));     // foreign
  rx.on_frame(ByteSpan(other.frame(1)));     // foreign
  // 1 corrupted of 2 own frames; the 2 foreign frames are excluded.
  EXPECT_DOUBLE_EQ(rx.observed_corruption_rate(), 0.5);
}

TEST(Receiver, RenderHookFiresOncePerClearPacket) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  std::vector<std::size_t> rendered;
  rx.set_render_hook([&](std::size_t idx, ByteSpan) { rendered.push_back(idx); });
  rx.on_frame(ByteSpan(tx.frame(2)));
  rx.on_frame(ByteSpan(tx.frame(2)));               // duplicate
  rx.on_frame(ByteSpan(tx.frame(tx.m())));          // redundancy: no render
  rx.on_frame(ByteSpan(tx.frame(0)));
  EXPECT_EQ(rendered, (std::vector<std::size_t>{2, 0}));
}

TEST(Receiver, RoundEndResetsOnlyWithoutCaching) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});

  transmit::ClientReceiver cached(receiver_config(tx, true), lin.segments);
  cached.on_frame(ByteSpan(tx.frame(0)));
  cached.on_round_end();
  EXPECT_EQ(cached.intact_count(), 1u);

  transmit::ClientReceiver uncached(receiver_config(tx, false), lin.segments);
  uncached.on_frame(ByteSpan(tx.frame(0)));
  EXPECT_GT(uncached.content_received(), 0.0);
  uncached.on_round_end();
  EXPECT_EQ(uncached.intact_count(), 0u);
  EXPECT_EQ(uncached.content_received(), 0.0);
}

TEST(Session, GivesUpAfterMaxRounds) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx(receiver_config(tx, /*caching=*/false), lin.segments);
  auto ch = make_channel(0.6, 5);  // nocaching at 60% corruption: hopeless
  transmit::SessionConfig cfg;
  cfg.max_rounds = 4;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 4);
  EXPECT_EQ(result.frames_sent, 4 * static_cast<long>(tx.n()));
}

TEST(Session, RequestDelayChargedPerStalledRound) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx(receiver_config(tx, /*caching=*/true), lin.segments);
  auto ch = make_channel(0.3, 11);
  transmit::SessionConfig cfg;
  cfg.request_delay_s = 1.5;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  ASSERT_TRUE(result.completed);
  ASSERT_GT(result.rounds, 1);
  const double frame_time = ch.transmit_time(tx.frame(0).size());
  const double packet_time = static_cast<double>(result.frames_sent) * frame_time;
  EXPECT_NEAR(result.response_time - packet_time, 1.5 * (result.rounds - 1), 1e-9);
}

TEST(Session, CompletionOnFinalFrameBeatsRelevanceAbort) {
  // Regression: the relevance threshold used to be checked before completion,
  // so a document whose decoder completed on its final frame (content jumping
  // from 0 to the total, across the threshold) was misfiled as an
  // irrelevance abort. Corrupt exactly the m clear-text packets: content
  // stays 0 until the redundancy packets alone complete the decode.
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 2.0});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  channel::ChannelConfig cc;
  channel::WirelessChannel ch(
      cc, std::make_unique<ScriptedErrorModel>(static_cast<long>(tx.m())));
  transmit::SessionConfig cfg;
  cfg.relevance_threshold = 0.5;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.aborted_irrelevant);
  EXPECT_EQ(result.frames_sent, static_cast<long>(2 * tx.m()));
  EXPECT_NEAR(result.content_received, lin.total_content(), 1e-9);
}

TEST(Session, ResponseTimeIncludesPropagationDelay) {
  // Regression: response_time was taken from the channel's depart clock, so
  // a configured propagation delay never reached the accounting even though
  // the user cannot have seen the final frame before it arrived.
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  channel::ChannelConfig cc;
  cc.propagation_delay_s = 0.25;
  channel::WirelessChannel ch(cc, std::make_unique<channel::IidErrorModel>(0.0));
  transmit::TransferSession session(tx, rx, ch);
  const auto result = session.run();
  ASSERT_TRUE(result.completed);
  const double frame_time = ch.transmit_time(tx.frame(0).size());
  EXPECT_NEAR(result.response_time,
              static_cast<double>(tx.m()) * frame_time + 0.25, 1e-9);
}

TEST(Session, TraceRecordsRoundsAndOutcome) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx(receiver_config(tx, /*caching=*/true), lin.segments);
  auto ch = make_channel(0.3, 123);
  obs::SessionTrace trace;
  trace.capture_events(true);
  transmit::SessionConfig cfg;
  cfg.trace = &trace;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(trace.completed());
  EXPECT_FALSE(trace.aborted_irrelevant());
  EXPECT_EQ(static_cast<int>(trace.rounds().size()), result.rounds);
  EXPECT_EQ(trace.frames_sent(), result.frames_sent);
  EXPECT_NEAR(trace.response_time(), result.response_time, 1e-9);
  long intact = 0;
  long corrupted = 0;
  for (const auto& round : trace.rounds()) {
    intact += round.frames_intact;
    corrupted += round.frames_corrupted;
  }
  EXPECT_EQ(intact, static_cast<long>(rx.intact_count()));
  EXPECT_EQ(corrupted, rx.frames_corrupted());
  EXPECT_FALSE(trace.events().empty());
  EXPECT_NE(trace.to_json().find("\"rounds\""), std::string::npos);
}

TEST(Session, NoTraceLeavesReceiverSinkDetached) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  auto ch = make_channel(0.1, 7);
  transmit::TransferSession session(tx, rx, ch);
  const auto result = session.run();  // must not crash on any event path
  EXPECT_TRUE(result.completed);
}

TEST(AdaptiveGamma, UsesInitialUntilObserved) {
  transmit::AdaptiveGamma ag({.initial_gamma = 1.7, .target_success = 0.95});
  EXPECT_FALSE(ag.has_estimate());
  EXPECT_DOUBLE_EQ(ag.gamma(40), 1.7);
}

TEST(AdaptiveGamma, TracksObservedRate) {
  transmit::AdaptiveGamma ag({.initial_gamma = 1.5, .target_success = 0.95,
                              .ewma_alpha = 0.5});
  for (int i = 0; i < 20; ++i) ag.observe(0.3);
  EXPECT_NEAR(ag.estimated_alpha(), 0.3, 1e-6);
  const double g = ag.gamma(50);
  // Matches the analytic optimum for alpha = 0.3.
  EXPECT_NEAR(g, mobiweb::analysis::redundancy_ratio(50, 0.3, 0.95), 1e-9);
  EXPECT_GT(g, 1.0 / 0.7);
}

TEST(AdaptiveGamma, CleanChannelDropsToNearOne) {
  transmit::AdaptiveGamma ag;
  for (int i = 0; i < 20; ++i) ag.observe(0.0);
  EXPECT_DOUBLE_EQ(ag.gamma(40), 1.0);
}

TEST(AdaptiveGamma, ClampsAtMaxGamma) {
  transmit::AdaptiveGamma ag({.initial_gamma = 1.5, .target_success = 0.99,
                              .ewma_alpha = 1.0, .max_gamma = 2.5});
  ag.observe(0.9);
  EXPECT_DOUBLE_EQ(ag.gamma(40), 2.5);
}

TEST(AdaptiveGamma, ToleratesDegenerateObservations) {
  // The corruption report crosses the lossy back channel, so garbage values
  // are reachable in production: they must be absorbed, not thrown on.
  transmit::AdaptiveGamma ag;
  ag.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(ag.has_estimate());  // NaN carries no information: ignored
  ag.observe(-0.5);                 // clamps to a clean channel
  EXPECT_TRUE(ag.has_estimate());
  EXPECT_DOUBLE_EQ(ag.estimated_alpha(), 0.0);
  EXPECT_DOUBLE_EQ(ag.gamma(40), 1.0);
}

TEST(AdaptiveGamma, ClampsRatesAtOrAboveOne) {
  transmit::AdaptiveGamma ag({.initial_gamma = 1.5, .target_success = 0.95,
                              .ewma_alpha = 1.0, .max_gamma = 4.0});
  for (const double bad : {1.0, 1.7, std::numeric_limits<double>::infinity()}) {
    ag.observe(bad);
    EXPECT_LE(ag.estimated_alpha(), 0.99) << "observed " << bad;
    const double g = ag.gamma(40);
    EXPECT_TRUE(std::isfinite(g)) << "observed " << bad;
    EXPECT_GE(g, 1.0);
    EXPECT_LE(g, 4.0);
  }
}

TEST(AdaptiveGamma, GammaNeverBelowOne) {
  // Even a rate clamped to zero must keep gamma >= 1 (N >= M is a structural
  // invariant of the dispersal).
  transmit::AdaptiveGamma ag;
  ag.observe(-100.0);
  EXPECT_GE(ag.gamma(1), 1.0);
  EXPECT_GE(ag.gamma(255), 1.0);
}

// ---------------------------------------------- give-up accounting fixes ----

TEST(Session, GiveUpReportsStatusEnum) {
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  channel::ChannelConfig cc;
  channel::WirelessChannel ch(cc, std::make_unique<ScriptedErrorModel>(1 << 30));
  transmit::SessionConfig cfg;
  cfg.max_rounds = 3;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  EXPECT_EQ(result.status, transmit::SessionStatus::kGaveUp);
  EXPECT_STREQ(transmit::status_name(result.status), "gave_up");
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.aborted_irrelevant);
  EXPECT_EQ(result.rounds, 3);
}

TEST(Session, GiveUpPreservesNoCachingContent) {
  // Regression: the final round used to run the receiver's round-end
  // bookkeeping, so a NoCaching client that gave up reported zero content
  // even though the user had watched clear-text packets render all round.
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx(receiver_config(tx, /*caching=*/false),
                              lin.segments);
  // Corrupt all of round 1, then deliver a few intact frames in round 2 —
  // not enough to decode, so the session gives up after round 2.
  const long n = static_cast<long>(tx.n());
  channel::ChannelConfig cc;
  channel::WirelessChannel ch(
      cc, std::make_unique<ScriptedErrorModel>(n + n - 3));
  transmit::SessionConfig cfg;
  cfg.max_rounds = 2;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  EXPECT_EQ(result.status, transmit::SessionStatus::kGaveUp);
  EXPECT_EQ(result.rounds, 2);
  // The three intact round-2 frames carried real content; it must survive
  // into the result even though a NoCaching reload would have flushed it.
  EXPECT_GT(result.content_received, 0.0);
  EXPECT_NEAR(result.content_received, rx.content_received(), 1e-12);
}

TEST(Session, GiveUpChargesNoTrailingRequestDelay) {
  // Regression: the retransmission request used to be charged after the
  // final round even though no request follows a give-up, diverging from the
  // analytic simulator's accounting.
  const auto lin = make_linear();
  transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.0});
  transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
  channel::ChannelConfig cc;
  channel::WirelessChannel ch(cc, std::make_unique<ScriptedErrorModel>(1 << 30));
  transmit::SessionConfig cfg;
  cfg.max_rounds = 3;
  cfg.request_delay_s = 5.0;
  transmit::TransferSession session(tx, rx, ch, cfg);
  const auto result = session.run();
  EXPECT_EQ(result.status, transmit::SessionStatus::kGaveUp);
  const double frame_time = ch.transmit_time(tx.frame(0).size());
  // 3 rounds of airtime + exactly 2 inter-round requests (not 3).
  EXPECT_NEAR(ch.now(),
              static_cast<double>(result.frames_sent) * frame_time + 2 * 5.0,
              1e-9);
}

TEST(Session, StatusEnumMatchesLegacyBools) {
  const auto lin = make_linear();
  // Completed path.
  {
    transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
    transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
    auto ch = make_channel(0.0, 3);
    transmit::TransferSession session(tx, rx, ch);
    const auto r = session.run();
    EXPECT_EQ(r.status, transmit::SessionStatus::kCompleted);
    EXPECT_TRUE(r.completed);
  }
  // Irrelevance-abort path.
  {
    transmit::DocumentTransmitter tx(lin, {.packet_size = 128, .gamma = 1.5});
    transmit::ClientReceiver rx(receiver_config(tx), lin.segments);
    auto ch = make_channel(0.0, 3);
    transmit::SessionConfig cfg;
    cfg.relevance_threshold = 0.05;
    transmit::TransferSession session(tx, rx, ch, cfg);
    const auto r = session.run();
    EXPECT_EQ(r.status, transmit::SessionStatus::kAbortedIrrelevant);
    EXPECT_TRUE(r.aborted_irrelevant);
    EXPECT_FALSE(r.completed);
  }
}
