// GF(2^8) arithmetic and linear algebra.
#include <gtest/gtest.h>

#include "gf256/gf256.hpp"
#include "gf256/matrix.hpp"
#include "util/rng.hpp"

namespace gf = mobiweb::gf;
using mobiweb::ContractViolation;
using mobiweb::Rng;

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(gf::add(0x00, 0x00), 0x00);
  EXPECT_EQ(gf::add(0xff, 0xff), 0x00);
  EXPECT_EQ(gf::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(gf::sub(0x53, 0xca), gf::add(0x53, 0xca));
}

TEST(Gf256, MulBasics) {
  EXPECT_EQ(gf::mul(0, 0x47), 0);
  EXPECT_EQ(gf::mul(0x47, 0), 0);
  EXPECT_EQ(gf::mul(1, 0x47), 0x47);
  EXPECT_EQ(gf::mul(0x47, 1), 0x47);
}

TEST(Gf256, MulKnownValue) {
  // 0x02 is the generator of the field with polynomial 0x11d:
  // 0x80 * 2 = 0x100 -> xor 0x11d -> 0x1d.
  EXPECT_EQ(gf::mul(0x80, 0x02), 0x1d);
  EXPECT_EQ(gf::mul(0x02, 0x80), 0x1d);
}

TEST(Gf256, MulCommutative) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<gf::Elem>(rng.next_below(256));
    const auto b = static_cast<gf::Elem>(rng.next_below(256));
    EXPECT_EQ(gf::mul(a, b), gf::mul(b, a));
  }
}

TEST(Gf256, MulAssociative) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<gf::Elem>(rng.next_below(256));
    const auto b = static_cast<gf::Elem>(rng.next_below(256));
    const auto c = static_cast<gf::Elem>(rng.next_below(256));
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256, MulDistributesOverAdd) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<gf::Elem>(rng.next_below(256));
    const auto b = static_cast<gf::Elem>(rng.next_below(256));
    const auto c = static_cast<gf::Elem>(rng.next_below(256));
    EXPECT_EQ(gf::mul(a, gf::add(b, c)), gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const auto e = static_cast<gf::Elem>(a);
    EXPECT_EQ(gf::mul(e, gf::inv(e)), 1) << "a=" << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW(gf::inv(0), ContractViolation);
  EXPECT_THROW(gf::div(1, 0), ContractViolation);
}

TEST(Gf256, DivMatchesMulByInverse) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<gf::Elem>(rng.next_below(256));
    const auto b = static_cast<gf::Elem>(1 + rng.next_below(255));
    EXPECT_EQ(gf::div(a, b), gf::mul(a, gf::inv(b)));
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; a += 7) {
    gf::Elem acc = 1;
    for (unsigned e = 0; e < 12; ++e) {
      EXPECT_EQ(gf::pow(static_cast<gf::Elem>(a), e), acc) << "a=" << a << " e=" << e;
      acc = gf::mul(acc, static_cast<gf::Elem>(a));
    }
  }
}

TEST(Gf256, PowZeroExponentIsOne) {
  EXPECT_EQ(gf::pow(0, 0), 1);
  EXPECT_EQ(gf::pow(37, 0), 1);
}

namespace {
// Square-and-multiply oracle: no log tables, no modular exponent reduction,
// so it cannot share the overflow bug pow() once had.
gf::Elem pow_oracle(gf::Elem a, unsigned e) {
  gf::Elem result = 1;
  gf::Elem base = a;
  while (e != 0) {
    if (e & 1u) result = gf::mul(result, base);
    base = gf::mul(base, base);
    e >>= 1;
  }
  return result;
}
}  // namespace

TEST(Gf256, PowLargeExponentsMatchOracle) {
  // Regression: log_[a] * e used to be computed in 32 bits, overflowing for
  // e beyond ~16.9M and silently returning a wrong field element.
  const unsigned exponents[] = {16'900'000u,    16'912'790u,  100'000'000u,
                                2'147'483'647u, 4'000'000'000u, 4'294'967'295u};
  for (unsigned e : exponents) {
    for (int a = 0; a < 256; a += 5) {
      const auto elem = static_cast<gf::Elem>(a);
      EXPECT_EQ(gf::pow(elem, e), pow_oracle(elem, e)) << "a=" << a << " e=" << e;
    }
  }
}

TEST(Gf256, PowRandomExponentsMatchOracle) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<gf::Elem>(rng.next_below(256));
    const auto e = static_cast<unsigned>(rng.next_u64());
    EXPECT_EQ(gf::pow(a, e), pow_oracle(a, e)) << "a=" << int(a) << " e=" << e;
  }
}

TEST(Gf256, MulAddRow) {
  const std::vector<gf::Elem> in = {1, 2, 3, 0, 255};
  std::vector<gf::Elem> out = {10, 20, 30, 40, 50};
  const std::vector<gf::Elem> expect = {
      gf::add(10, gf::mul(7, 1)), gf::add(20, gf::mul(7, 2)),
      gf::add(30, gf::mul(7, 3)), gf::add(40, gf::mul(7, 0)),
      gf::add(50, gf::mul(7, 255))};
  gf::mul_add_row(out.data(), in.data(), 7, in.size());
  EXPECT_EQ(out, expect);
}

TEST(Gf256, MulAddRowZeroCoefficientIsNoop) {
  const std::vector<gf::Elem> in = {9, 9, 9};
  std::vector<gf::Elem> out = {1, 2, 3};
  gf::mul_add_row(out.data(), in.data(), 0, in.size());
  EXPECT_EQ(out, (std::vector<gf::Elem>{1, 2, 3}));
}

TEST(Matrix, IdentityMultiplication) {
  gf::Matrix id = gf::Matrix::identity(5);
  EXPECT_TRUE(id.is_identity());
  gf::Matrix m(5, 5);
  Rng rng(5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      m.at(r, c) = static_cast<gf::Elem>(rng.next_below(256));
    }
  }
  EXPECT_EQ(id.multiply(m), m);
  EXPECT_EQ(m.multiply(id), m);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  gf::Matrix a(2, 3);
  gf::Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), ContractViolation);
}

TEST(Matrix, InverseRoundTrip) {
  Rng rng(6);
  for (std::size_t n : {1u, 2u, 5u, 16u}) {
    // Random matrices over GF(256) are invertible with high probability;
    // retry until one is.
    for (;;) {
      gf::Matrix m(n, n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          m.at(r, c) = static_cast<gf::Elem>(rng.next_below(256));
        }
      }
      gf::Matrix inv = m.inverse();
      if (inv.empty()) continue;
      EXPECT_TRUE(m.multiply(inv).is_identity()) << "n=" << n;
      EXPECT_TRUE(inv.multiply(m).is_identity()) << "n=" << n;
      break;
    }
  }
}

TEST(Matrix, SingularReturnsEmpty) {
  gf::Matrix m(2, 2);  // all zeros
  EXPECT_TRUE(m.inverse().empty());

  gf::Matrix dup(2, 2);  // duplicate rows
  dup.at(0, 0) = 3;
  dup.at(0, 1) = 5;
  dup.at(1, 0) = 3;
  dup.at(1, 1) = 5;
  EXPECT_TRUE(dup.inverse().empty());
}

TEST(Matrix, InverseRequiresSquare) {
  gf::Matrix m(2, 3);
  EXPECT_THROW(m.inverse(), ContractViolation);
}

TEST(Matrix, SelectRows) {
  gf::Matrix m(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    m.at(r, 0) = static_cast<gf::Elem>(r + 1);
    m.at(r, 1) = static_cast<gf::Elem>(10 * (r + 1));
  }
  gf::Matrix s = m.select_rows({3, 1});
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.at(0, 0), 4);
  EXPECT_EQ(s.at(0, 1), 40);
  EXPECT_EQ(s.at(1, 0), 2);
  EXPECT_EQ(s.at(1, 1), 20);
}

TEST(Vandermonde, ShapeAndFirstColumn) {
  gf::Matrix v = gf::vandermonde(6, 3);
  EXPECT_EQ(v.rows(), 6u);
  EXPECT_EQ(v.cols(), 3u);
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(v.at(r, 0), 1);  // x^0
    EXPECT_EQ(v.at(r, 1), static_cast<gf::Elem>(r + 1));  // x^1
  }
}

TEST(Vandermonde, AnySquareRowSubsetInvertible) {
  gf::Matrix v = gf::vandermonde(10, 4);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    // Draw 4 distinct row indices.
    std::vector<std::size_t> rows;
    while (rows.size() < 4) {
      const std::size_t r = rng.next_below(10);
      bool dup = false;
      for (std::size_t x : rows) dup |= (x == r);
      if (!dup) rows.push_back(r);
    }
    EXPECT_FALSE(v.select_rows(rows).inverse().empty());
  }
}

TEST(Vandermonde, SystematicTopIsIdentity) {
  for (auto [n, m] : {std::pair<std::size_t, std::size_t>{8, 4},
                      {255, 100}, {5, 5}, {60, 40}}) {
    gf::Matrix g = gf::systematic_vandermonde(n, m);
    std::vector<std::size_t> top(m);
    for (std::size_t i = 0; i < m; ++i) top[i] = i;
    EXPECT_TRUE(g.select_rows(top).is_identity()) << "n=" << n << " m=" << m;
  }
}

TEST(Vandermonde, SystematicAnySubsetStillInvertible) {
  gf::Matrix g = gf::systematic_vandermonde(12, 5);
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> rows;
    while (rows.size() < 5) {
      const std::size_t r = rng.next_below(12);
      bool dup = false;
      for (std::size_t x : rows) dup |= (x == r);
      if (!dup) rows.push_back(r);
    }
    EXPECT_FALSE(g.select_rows(rows).inverse().empty());
  }
}

TEST(Vandermonde, RowLimitEnforced) {
  EXPECT_THROW(gf::vandermonde(256, 4), ContractViolation);
  EXPECT_NO_THROW(gf::vandermonde(255, 4));
}

namespace {
// Independent reference multiplication: carry-less (polynomial) multiply
// followed by reduction mod x^8 + x^4 + x^3 + x^2 + 1 — no tables involved.
gf::Elem slow_mul(gf::Elem a, gf::Elem b) {
  unsigned product = 0;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) product ^= static_cast<unsigned>(a) << bit;
  }
  for (int bit = 14; bit >= 8; --bit) {
    if (product & (1u << bit)) product ^= 0x11du << (bit - 8);
  }
  return static_cast<gf::Elem>(product);
}
}  // namespace

TEST(Gf256, TableMulMatchesBitwiseReferenceExhaustively) {
  // All 65536 pairs against the table-free implementation.
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf::mul(static_cast<gf::Elem>(a), static_cast<gf::Elem>(b)),
                slow_mul(static_cast<gf::Elem>(a), static_cast<gf::Elem>(b)))
          << a << " * " << b;
    }
  }
}
