// Reproduction regression tests: the paper's qualitative conclusions,
// asserted programmatically on reduced-size runs of the actual experiment
// harness. If a refactor breaks the science, these fail before anyone reads
// a bench table.
#include <gtest/gtest.h>

#include "analysis/negbinom.hpp"
#include "doc/lod.hpp"
#include "sim/experiment.hpp"

namespace sim = mobiweb::sim;
namespace doc = mobiweb::doc;
namespace analysis = mobiweb::analysis;

namespace {

// Reduced-size but statistically stable runs (10 reps x 100 docs).
sim::ExperimentParams base_params() {
  sim::ExperimentParams p;
  p.repetitions = 10;
  p.documents_per_session = 100;
  return p;
}

double mean_rt(const sim::ExperimentParams& p) {
  return sim::run_browsing_experiment(p).response_time.mean;
}

}  // namespace

// §5.1 / Figure 4: "the impact of the cache is very significant, especially
// when the error rate of the channel is high."
TEST(PaperConclusions, CachingGainGrowsWithErrorRate) {
  auto p = base_params();
  p.irrelevant_fraction = 0.0;
  p.gamma = 1.3;
  double prev_gain = 0.0;
  for (const double alpha : {0.1, 0.3, 0.5}) {
    p.alpha = alpha;
    p.caching = true;
    const double cached = mean_rt(p);
    p.caching = false;
    const double uncached = mean_rt(p);
    const double gain = uncached / cached;
    EXPECT_GE(gain, prev_gain * 0.95) << "alpha=" << alpha;  // monotone-ish
    if (alpha >= 0.3) {
      EXPECT_GT(gain, 1.5) << "alpha=" << alpha;
    }
    prev_gain = gain;
  }
}

// §5.1: gamma = 1.5 is a good choice for small-to-moderate alpha or with
// caching; going to 2.5 buys almost nothing with caching at alpha = 0.3.
TEST(PaperConclusions, Gamma15SufficesWithCaching) {
  auto p = base_params();
  p.alpha = 0.3;
  p.caching = true;
  p.gamma = 1.5;
  const double at_15 = mean_rt(p);
  p.gamma = 2.5;
  const double at_25 = mean_rt(p);
  EXPECT_LT(at_15, at_25 * 1.10);  // within 10% of the over-provisioned run
}

// §5.1: NoCaching at high alpha needs gamma raised toward 2.
TEST(PaperConclusions, NoCachingNeedsMoreRedundancy) {
  auto p = base_params();
  p.alpha = 0.4;
  p.caching = false;
  p.gamma = 1.5;
  const double at_15 = mean_rt(p);
  p.gamma = 2.0;
  const double at_20 = mean_rt(p);
  EXPECT_LT(at_20, at_15 * 0.7);  // raising gamma helps a lot
}

// §5.2 / Figure 5: response time decreases (essentially linearly) in I.
TEST(PaperConclusions, ResponseTimeLinearInIrrelevantFraction) {
  auto p = base_params();
  p.alpha = 0.2;
  std::vector<double> rt;
  for (const double i : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    p.irrelevant_fraction = i;
    rt.push_back(mean_rt(p));
  }
  for (std::size_t k = 1; k < rt.size(); ++k) EXPECT_LT(rt[k], rt[k - 1]);
  // Linearity: the midpoint is close to the average of the endpoints.
  EXPECT_NEAR(rt[2], (rt[0] + rt[4]) / 2.0, 0.05 * rt[0]);
}

// §5.2: versus F, slow rise then a jump once clear-text prefixes no longer
// suffice, then a plateau.
TEST(PaperConclusions, ResponseTimeVsFHasPlateau) {
  auto p = base_params();
  p.alpha = 0.3;
  p.irrelevant_fraction = 1.0;
  std::vector<double> rt;
  for (const double f : {0.1, 0.3, 0.9, 1.0}) {
    p.relevance_threshold = f;
    rt.push_back(mean_rt(p));
  }
  EXPECT_LT(rt[0], rt[1]);
  EXPECT_LT(rt[1], rt[2]);
  EXPECT_NEAR(rt[2], rt[3], 0.08 * rt[3]);  // plateau at the top
}

// §5.3 / Figure 6: paragraph LOD gives 30-50% improvement at F = 0.1..0.3;
// ordering paragraph > subsection > section > document.
TEST(PaperConclusions, LodImprovementOrdering) {
  auto p = base_params();
  p.alpha = 0.1;
  p.irrelevant_fraction = 1.0;
  for (const double f : {0.1, 0.2, 0.3}) {
    p.relevance_threshold = f;
    p.lod = doc::Lod::kDocument;
    const double rt_doc = mean_rt(p);
    p.lod = doc::Lod::kSection;
    const double rt_sec = mean_rt(p);
    p.lod = doc::Lod::kSubsection;
    const double rt_sub = mean_rt(p);
    p.lod = doc::Lod::kParagraph;
    const double rt_par = mean_rt(p);
    EXPECT_LT(rt_par, rt_sub) << f;
    EXPECT_LT(rt_sub, rt_sec) << f;
    EXPECT_LT(rt_sec, rt_doc) << f;
    const double improvement = rt_doc / rt_par;
    EXPECT_GT(improvement, 1.25) << f;
    EXPECT_LT(improvement, 1.7) << f;
  }
}

// §5.3: the improvement is "not as sensitive to the failure probability".
TEST(PaperConclusions, LodImprovementInsensitiveToAlpha) {
  auto p = base_params();
  p.irrelevant_fraction = 1.0;
  p.relevance_threshold = 0.2;
  std::vector<double> improvements;
  for (const double alpha : {0.1, 0.3, 0.5}) {
    p.alpha = alpha;
    p.lod = doc::Lod::kDocument;
    const double rt_doc = mean_rt(p);
    p.lod = doc::Lod::kParagraph;
    improvements.push_back(rt_doc / mean_rt(p));
  }
  const auto [lo, hi] = std::minmax_element(improvements.begin(), improvements.end());
  EXPECT_LT(*hi - *lo, 0.25);  // narrow band across alpha
}

// §5.4 / Figure 7: higher skew -> more improvement; peak near F = 0.1-0.2.
TEST(PaperConclusions, SkewIncreasesImprovement) {
  auto p = base_params();
  p.alpha = 0.1;
  p.irrelevant_fraction = 1.0;
  p.relevance_threshold = 0.2;
  double prev = 0.0;
  for (const double skew : {1.0, 2.0, 3.0, 5.0}) {
    p.document.skew = skew;
    p.lod = doc::Lod::kDocument;
    const double rt_doc = mean_rt(p);
    p.lod = doc::Lod::kParagraph;
    const double improvement = rt_doc / mean_rt(p);
    EXPECT_GE(improvement, prev - 0.02) << skew;
    prev = improvement;
  }
  // At skew 1 contents are uniform: ranked order ~ sequential, improvement ~1.
  p.document.skew = 1.0;
  p.lod = doc::Lod::kDocument;
  const double rt_doc = mean_rt(p);
  p.lod = doc::Lod::kParagraph;
  EXPECT_NEAR(rt_doc / mean_rt(p), 1.0, 0.05);
}

// §4.1 / Figure 2: N(M) is near-linear in M at fixed alpha.
TEST(PaperConclusions, OptimalNNearLinearInM) {
  for (const double alpha : {0.1, 0.3, 0.5}) {
    const int n20 = analysis::optimal_cooked_packets(20, alpha, 0.95);
    const int n50 = analysis::optimal_cooked_packets(50, alpha, 0.95);
    const int n100 = analysis::optimal_cooked_packets(100, alpha, 0.95);
    // Secant slopes agree within 15%.
    const double s1 = static_cast<double>(n50 - n20) / 30.0;
    const double s2 = static_cast<double>(n100 - n50) / 50.0;
    EXPECT_NEAR(s1, s2, 0.15 * s1) << alpha;
  }
}

// §4.2 / Figure 3: gamma as a function of alpha barely depends on M.
TEST(PaperConclusions, GammaBandNarrowAcrossM) {
  for (const double alpha : {0.1, 0.3, 0.5}) {
    const double g10 = analysis::redundancy_ratio(10, alpha, 0.95);
    const double g100 = analysis::redundancy_ratio(100, alpha, 0.95);
    EXPECT_LT(g10 - g100, 0.6) << alpha;
    EXPECT_GT(g10, g100) << alpha;  // small M needs relatively more slack
  }
}
