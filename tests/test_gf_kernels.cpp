// Cross-kernel equivalence for the GF(2^8) row kernels, and the parallel
// IDA encode/decode path. Every kernel must produce byte-identical output:
// the dispatch layer (and the MOBIWEB_GF_KERNEL override) would otherwise
// let a fast path silently corrupt cooked packets.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "gf256/gf256.hpp"
#include "ida/ida.hpp"
#include "util/rng.hpp"

namespace gf = mobiweb::gf;
namespace ida = mobiweb::ida;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::ContractViolation;
using mobiweb::Rng;

namespace {

std::vector<gf::Kernel> available_kernels() {
  std::vector<gf::Kernel> ks = {gf::Kernel::kScalar, gf::Kernel::kMulTable,
                                gf::Kernel::kSplitNibble};
  if (gf::kernel_available(gf::Kernel::kSimd)) ks.push_back(gf::Kernel::kSimd);
  ks.push_back(gf::Kernel::kAuto);
  return ks;
}

Bytes random_bytes(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

// Restores the previous threshold on scope exit so tests never leak the
// forced-parallel setting into other suites.
class ParallelThresholdGuard {
 public:
  explicit ParallelThresholdGuard(std::size_t t)
      : previous_(ida::set_parallel_threshold(t)) {}
  ~ParallelThresholdGuard() { ida::set_parallel_threshold(previous_); }

 private:
  std::size_t previous_;
};

}  // namespace

TEST(GfKernels, NamesAndAvailability) {
  EXPECT_STREQ(gf::kernel_name(gf::Kernel::kScalar), "scalar");
  EXPECT_STREQ(gf::kernel_name(gf::Kernel::kMulTable), "multable");
  EXPECT_STREQ(gf::kernel_name(gf::Kernel::kSplitNibble), "splitnibble");
  EXPECT_STREQ(gf::kernel_name(gf::Kernel::kSimd), "simd");
  EXPECT_STREQ(gf::kernel_name(gf::Kernel::kAuto), "auto");
  EXPECT_TRUE(gf::kernel_available(gf::Kernel::kScalar));
  EXPECT_TRUE(gf::kernel_available(gf::Kernel::kMulTable));
  EXPECT_TRUE(gf::kernel_available(gf::Kernel::kSplitNibble));
  EXPECT_TRUE(gf::kernel_available(gf::Kernel::kAuto));
}

TEST(GfKernels, AutoResolvesToConcreteAvailableKernel) {
  const gf::Kernel k = gf::resolve_kernel(gf::Kernel::kAuto);
  EXPECT_NE(k, gf::Kernel::kAuto);
  EXPECT_TRUE(gf::kernel_available(k));
  EXPECT_EQ(gf::resolve_kernel(gf::Kernel::kScalar), gf::Kernel::kScalar);
}

TEST(GfKernels, SetKernelRoundTrip) {
  const gf::Kernel before = gf::active_kernel();
  gf::set_kernel(gf::Kernel::kSplitNibble);
  EXPECT_EQ(gf::active_kernel(), gf::Kernel::kSplitNibble);
  gf::set_kernel(before);
  EXPECT_EQ(gf::active_kernel(), before);
}

TEST(GfKernels, MulTableMatchesMul) {
  for (int c : {0, 1, 2, 7, 0x53, 0x8e, 255}) {
    const gf::Elem* t = gf::mul_table(static_cast<gf::Elem>(c));
    for (int x = 0; x < 256; ++x) {
      ASSERT_EQ(t[x], gf::mul(static_cast<gf::Elem>(c), static_cast<gf::Elem>(x)))
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(GfKernels, MulAddRowIdenticalAcrossKernels) {
  Rng rng(40);
  const std::size_t lengths[] = {0, 1, 7, 8, 9, 15, 16, 17, 31, 100, 4096};
  const int coefficients[] = {0, 1, 2, 3, 0x1d, 0x57, 0x8e, 0xfe, 0xff};
  for (const std::size_t n : lengths) {
    for (const int c : coefficients) {
      const Bytes in = random_bytes(n, rng);
      const Bytes base = random_bytes(n, rng);
      Bytes expect = base;
      gf::mul_add_row(expect.data(), in.data(), static_cast<gf::Elem>(c), n,
                      gf::Kernel::kScalar);
      for (const gf::Kernel k : available_kernels()) {
        Bytes out = base;
        gf::mul_add_row(out.data(), in.data(), static_cast<gf::Elem>(c), n, k);
        ASSERT_EQ(out, expect) << "kernel=" << gf::kernel_name(k) << " n=" << n
                               << " c=" << c;
      }
    }
  }
}

TEST(GfKernels, MulRowIdenticalAcrossKernels) {
  Rng rng(41);
  const std::size_t lengths[] = {0, 1, 7, 8, 9, 16, 17, 100, 4096};
  const int coefficients[] = {0, 1, 2, 0x57, 0x8e, 0xff};
  for (const std::size_t n : lengths) {
    for (const int c : coefficients) {
      const Bytes in = random_bytes(n, rng);
      Bytes expect(n, 0xaa);
      gf::mul_row(expect.data(), in.data(), static_cast<gf::Elem>(c), n,
                  gf::Kernel::kScalar);
      for (const gf::Kernel k : available_kernels()) {
        Bytes out(n, 0x55);  // different fill: result must not depend on out
        gf::mul_row(out.data(), in.data(), static_cast<gf::Elem>(c), n, k);
        ASSERT_EQ(out, expect) << "kernel=" << gf::kernel_name(k) << " n=" << n
                               << " c=" << c;
      }
    }
  }
}

TEST(GfKernels, RowsWithZeroBytesIdenticalAcrossKernels) {
  // Zero input bytes exercise the scalar kernel's x==0 branch against the
  // branch-free table kernels.
  Rng rng(42);
  Bytes in = random_bytes(1024, rng);
  for (std::size_t i = 0; i < in.size(); i += 3) in[i] = 0;
  const Bytes base = random_bytes(1024, rng);
  Bytes expect = base;
  gf::mul_add_row(expect.data(), in.data(), 0x39, in.size(), gf::Kernel::kScalar);
  for (const gf::Kernel k : available_kernels()) {
    Bytes out = base;
    gf::mul_add_row(out.data(), in.data(), 0x39, in.size(), k);
    ASSERT_EQ(out, expect) << "kernel=" << gf::kernel_name(k);
  }
}

TEST(GfKernels, AliasedInOutIdenticalAcrossKernels) {
  // out == in is element-wise for both ops, so every kernel must permit it:
  //   mul_add_row: out[i] ^= c * out[i]  == (c ^ 1) * out[i]
  //   mul_row:     out[i]  = c * out[i]
  Rng rng(43);
  for (const std::size_t n : {1u, 9u, 100u, 4096u}) {
    const Bytes base = random_bytes(n, rng);
    for (const int c : {0, 1, 0x57, 0xff}) {
      Bytes expect = base;
      gf::mul_add_row(expect.data(), expect.data(), static_cast<gf::Elem>(c), n,
                      gf::Kernel::kScalar);
      for (const gf::Kernel k : available_kernels()) {
        Bytes buf = base;
        gf::mul_add_row(buf.data(), buf.data(), static_cast<gf::Elem>(c), n, k);
        ASSERT_EQ(buf, expect) << "mul_add kernel=" << gf::kernel_name(k);
      }
      expect = base;
      gf::mul_row(expect.data(), expect.data(), static_cast<gf::Elem>(c), n,
                  gf::Kernel::kScalar);
      for (const gf::Kernel k : available_kernels()) {
        Bytes buf = base;
        gf::mul_row(buf.data(), buf.data(), static_cast<gf::Elem>(c), n, k);
        ASSERT_EQ(buf, expect) << "mul_row kernel=" << gf::kernel_name(k);
      }
    }
  }
}

TEST(GfKernels, RandomizedRowsAllKernelsAgree) {
  Rng rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng.next_below(600);
    const auto c = static_cast<gf::Elem>(rng.next_below(256));
    const Bytes in = random_bytes(n, rng);
    const Bytes base = random_bytes(n, rng);
    Bytes expect = base;
    gf::mul_add_row(expect.data(), in.data(), c, n, gf::Kernel::kScalar);
    for (const gf::Kernel k : available_kernels()) {
      Bytes out = base;
      gf::mul_add_row(out.data(), in.data(), c, n, k);
      ASSERT_EQ(out, expect) << "kernel=" << gf::kernel_name(k) << " trial="
                             << trial;
    }
  }
}

TEST(IdaParallel, EncodeIdenticalToSerial) {
  Rng rng(45);
  const Bytes payload = random_bytes(10240, rng);
  const ida::Encoder enc(40, 60);
  ParallelThresholdGuard serial(static_cast<std::size_t>(-1));
  const auto cooked_serial = enc.encode_payload(ByteSpan(payload), 256);
  {
    ParallelThresholdGuard parallel(0);
    const auto cooked_parallel = enc.encode_payload(ByteSpan(payload), 256);
    EXPECT_EQ(cooked_parallel, cooked_serial);
  }
}

TEST(IdaParallel, DecodeIdenticalToSerial) {
  Rng rng(46);
  const Bytes payload = random_bytes(10240, rng);
  const ida::Encoder enc(40, 80);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  std::vector<std::pair<std::size_t, Bytes>> redundancy;
  for (std::size_t i = 40; i < 80; ++i) redundancy.emplace_back(i, cooked[i]);
  const ida::Decoder dec(40, 80);
  ParallelThresholdGuard serial(static_cast<std::size_t>(-1));
  const auto raw_serial = dec.decode(redundancy);
  {
    ParallelThresholdGuard parallel(0);
    const auto raw_parallel = dec.decode(redundancy);
    EXPECT_EQ(raw_parallel, raw_serial);
    EXPECT_EQ(dec.decode_payload(redundancy, payload.size()), payload);
  }
}

TEST(IdaParallel, StreamingReconstructThroughParallelPath) {
  ParallelThresholdGuard parallel(0);
  Rng rng(47);
  const Bytes payload = random_bytes(10240, rng);
  const ida::Encoder enc(40, 60);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);

  // Shuffled arrival with losses: drop a third, feed the rest.
  std::vector<std::size_t> order(60);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    std::swap(order[i], order[rng.next_below(i + 1)]);
  }
  ida::StreamingDecoder sd(40, 60, 256, payload.size());
  for (std::size_t i = 0; i < 40; ++i) {
    sd.add(order[i], ByteSpan(cooked[order[i]]));
  }
  ASSERT_TRUE(sd.complete());
  EXPECT_EQ(sd.reconstruct(), payload);
}

TEST(IdaParallel, EveryKernelRoundTripsThroughEncodeDecode) {
  ParallelThresholdGuard parallel(0);
  Rng rng(48);
  const Bytes payload = random_bytes(5000, rng);
  const gf::Kernel before = gf::active_kernel();
  for (const gf::Kernel k : available_kernels()) {
    gf::set_kernel(k);
    const ida::Encoder enc(20, 30);
    const auto cooked = enc.encode_payload(ByteSpan(payload), 250);
    std::vector<std::pair<std::size_t, Bytes>> kept;
    for (std::size_t i = 0; i < 30; i += 3) kept.emplace_back(i, cooked[i]);
    for (std::size_t i = 1; i < 30 && kept.size() < 20; i += 3) {
      kept.emplace_back(i, cooked[i]);
    }
    const ida::Decoder dec(20, 30);
    EXPECT_EQ(dec.decode_payload(kept, payload.size()), payload)
        << "kernel=" << gf::kernel_name(k);
  }
  gf::set_kernel(before);
}

TEST(IdaParallel, ThresholdSetterReturnsPrevious) {
  const std::size_t def = ida::parallel_threshold();
  const std::size_t prev = ida::set_parallel_threshold(12345);
  EXPECT_EQ(prev, def);
  EXPECT_EQ(ida::parallel_threshold(), 12345u);
  ida::set_parallel_threshold(prev);
  EXPECT_EQ(ida::parallel_threshold(), def);
}

// Lazily-built shared state (the per-coefficient 256-byte multiply tables and
// the dispatch-table initialisation behind resolve_kernel) must be safe on
// concurrent first use: the fleet engine's shards hit the coding path from
// several pool workers at once with no warm-up. Each thread works a distinct
// coefficient range so table construction itself races, then every result is
// checked against the scalar reference.
TEST(GfKernels, ConcurrentFirstUseMatchesScalarReference) {
  constexpr std::size_t kRow = 512;
  constexpr int kThreads = 8;
  Rng rng(0xC0FFEE);
  const Bytes in = random_bytes(kRow, rng);

  std::vector<Bytes> got(kThreads, Bytes(kRow, 0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int c = 1; c < 256; ++c) {
        gf::mul_add_row(got[static_cast<std::size_t>(t)].data(), in.data(),
                        static_cast<gf::Elem>(c), kRow);
      }
    });
  }
  for (auto& th : threads) th.join();

  Bytes want(kRow, 0);
  for (int c = 1; c < 256; ++c) {
    gf::mul_add_row(want.data(), in.data(), static_cast<gf::Elem>(c), kRow,
                    gf::Kernel::kScalar);
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)], want) << "thread " << t;
  }
}
