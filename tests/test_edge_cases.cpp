// Edge cases across modules: degenerate documents, odd markup, boundary
// parameters — inputs a deployed gateway would actually meet.
#include <gtest/gtest.h>

#include <string>

#include "channel/error_model.hpp"
#include "core/mobiweb.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "doc/recognizer.hpp"
#include "html/structurer.hpp"
#include "sim/experiment.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace xml = mobiweb::xml;
namespace sim = mobiweb::sim;
namespace channel = mobiweb::channel;
using mobiweb::ContractViolation;

// ---- Degenerate documents ----------------------------------------------------

TEST(EdgeDoc, EmptyRootElement) {
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse("<paper/>"));
  EXPECT_EQ(sc.root().info_content, 0.0);
  EXPECT_TRUE(sc.root().children.empty());
  const auto lin = doc::linearize(sc);
  EXPECT_TRUE(lin.payload.empty());
}

TEST(EdgeDoc, TitleOnlyDocument) {
  doc::ScGenerator gen;
  const auto sc = gen.generate(
      xml::parse("<paper><title>Just A Title Here</title></paper>"));
  // All keywords sit on the root: root IC is 1, there are no children.
  EXPECT_NEAR(sc.root().info_content, 1.0, 1e-12);
  EXPECT_TRUE(sc.root().children.empty());
}

TEST(EdgeDoc, StopWordsOnlyDocument) {
  doc::ScGenerator gen;
  const auto sc =
      gen.generate(xml::parse("<paper><para>the and of or but</para></paper>"));
  EXPECT_EQ(sc.document_terms().total(), 0);
  EXPECT_EQ(sc.root().info_content, 0.0);
}

TEST(EdgeDoc, SingleKeyword) {
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse("<paper><para>wireless</para></paper>"));
  EXPECT_EQ(sc.norm(), 1);
  EXPECT_NEAR(sc.root().info_content, 1.0, 1e-12);
  // The lone keyword has weight 1 - log2(1/1) = 1.
  EXPECT_DOUBLE_EQ(sc.weight("wireless"), 1.0);
}

TEST(EdgeDoc, SubsubsectionDocumentsWork) {
  const char* src = R"(<paper><section><subsection>
      <subsubsection><para>deep content here</para></subsubsection>
      <subsubsection><para>more deep content</para></subsubsection>
    </subsection></section></paper>)";
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(src));
  EXPECT_EQ(doc::frontier_at(sc.root(), doc::Lod::kSubsubsection).size(), 2u);
  EXPECT_EQ(doc::frontier_at(sc.root(), doc::Lod::kParagraph).size(), 2u);
  EXPECT_NEAR(sc.root().info_content, 1.0, 1e-12);
}

TEST(EdgeDoc, CDataCountsAsText) {
  doc::ScGenerator gen;
  const auto sc = gen.generate(
      xml::parse("<paper><para><![CDATA[vandermonde matrices & <dispersal>]]></para></paper>"));
  EXPECT_GT(sc.document_terms().count("vandermond"), 0);
  EXPECT_GT(sc.document_terms().count("dispers"), 0);
}

TEST(EdgeDoc, UnicodeBytesSurviveTransmission) {
  // Non-ASCII text must round-trip bytewise through linearize + transport.
  mobiweb::Server server;
  server.publish_xml("u", "<paper><para>na\xC3\xAFve r\xC3\xA9sum\xC3\xA9 "
                          "\xE6\x97\xA5\xE6\x9C\xAC\xE8\xAA\x9E text</para></paper>");
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mobiweb::BrowseSession session(server, cfg);
  const auto r = session.fetch("u");
  EXPECT_NE(r.text.find("na\xC3\xAFve"), std::string::npos);
  EXPECT_NE(r.text.find("\xE6\x97\xA5\xE6\x9C\xAC\xE8\xAA\x9E"), std::string::npos);
}

// ---- HTML oddities -----------------------------------------------------------

TEST(EdgeHtml, SkippedHeadingLevels) {
  // h3 directly after h1 (no h2): the subsubsection gets wrapped into a
  // virtual subsection, keeping levels contiguous (same rule as the XML
  // recognizer's virtual units).
  const auto root = mobiweb::html::structure_html(
      "<h1>Top</h1><h3>Deep</h3><p>body text</p>");
  ASSERT_EQ(root.children.size(), 1u);
  const auto& sec = root.children[0];
  ASSERT_GE(sec.children.size(), 1u);
  EXPECT_EQ(sec.children[0].lod, doc::Lod::kSubsection);
  EXPECT_TRUE(sec.children[0].virtual_unit);
  ASSERT_GE(sec.children[0].children.size(), 1u);
  EXPECT_EQ(sec.children[0].children[0].lod, doc::Lod::kSubsubsection);
  EXPECT_EQ(sec.children[0].children[0].title, "Deep");
}

TEST(EdgeHtml, HeadingAfterDeeperHeadingClosesScope) {
  const auto root = mobiweb::html::structure_html(
      "<h1>A</h1><h2>A1</h2><p>x</p><h1>B</h1><p>y</p>");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].title, "A");
  EXPECT_EQ(root.children[1].title, "B");
  // B's paragraph must not have leaked into A1.
  EXPECT_NE(root.children[1].subtree_text().find("y"), std::string::npos);
}

TEST(EdgeHtml, UnclosedTagsTolerated) {
  const auto root = mobiweb::html::structure_html(
      "<h1>Sec<p>para without closings<b>bold run");
  EXPECT_GE(root.subtree_units(), 2u);
}

TEST(EdgeHtml, EmptyPage) {
  const auto root = mobiweb::html::structure_html("");
  EXPECT_EQ(root.lod, doc::Lod::kDocument);
  EXPECT_TRUE(root.children.empty());
  doc::ScGenerator gen;
  const auto sc = gen.generate(root);
  EXPECT_EQ(sc.root().info_content, 0.0);
}

TEST(EdgeHtml, NestedEmphasisCounted) {
  const auto root = mobiweb::html::structure_html(
      "<p>plain <b>bold <i>bolditalic</i></b> tail</p>");
  const doc::OrgUnit* leaf = &root;
  while (!leaf->children.empty()) leaf = &leaf->children[0];
  int emphasized = 0;
  for (const auto& t : leaf->own_tokens) emphasized += t.emphasized;
  EXPECT_EQ(emphasized, 2);  // "bold", "bolditalic"
}

// ---- Boundary parameters -----------------------------------------------------

TEST(EdgeSim, GammaOneMeansNoRedundancy) {
  sim::ExperimentParams p;
  p.gamma = 1.0;
  EXPECT_EQ(p.n(), p.m());
}

TEST(EdgeSim, TinyDocuments) {
  sim::SyntheticConfig cfg;
  cfg.doc_size = 256;  // exactly one packet
  cfg.packet_size = 256;
  cfg.sections = 1;
  cfg.subsections_per_section = 1;
  cfg.paragraphs_per_subsection = 1;
  EXPECT_EQ(cfg.raw_packets(), 1);
  mobiweb::Rng rng(1);
  const auto d = sim::generate_document(cfg, rng);
  const auto profile = sim::packet_content_profile(d, doc::Lod::kParagraph);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_NEAR(profile[0], 1.0, 1e-12);
}

TEST(EdgeSim, PacketSizeNotDividingParagraphs) {
  // 3 paragraphs of ~341.3 bytes over 256-byte packets: fractional overlap
  // accrual must still sum to 1.
  sim::SyntheticConfig cfg;
  cfg.doc_size = 1024;
  cfg.packet_size = 256;
  cfg.sections = 1;
  cfg.subsections_per_section = 1;
  cfg.paragraphs_per_subsection = 3;
  mobiweb::Rng rng(2);
  const auto d = sim::generate_document(cfg, rng);
  for (const auto lod : {doc::Lod::kDocument, doc::Lod::kParagraph}) {
    const auto profile = sim::packet_content_profile(d, lod);
    double sum = 0.0;
    for (double c : profile) sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(EdgeChannel, GilbertElliottParameterGuards) {
  EXPECT_THROW(channel::GilbertElliottModel(0.1, 0.0, 0.0, 1.0),
               ContractViolation);  // p_bad_to_good must be > 0
  EXPECT_THROW(channel::GilbertElliottModel::with_average_rate(0.5, 4.0, 0.4),
               ContractViolation);  // alpha >= loss_bad impossible
  EXPECT_THROW(channel::GilbertElliottModel::with_average_rate(0.1, 0.5),
               ContractViolation);  // burst < 1 packet
}

TEST(EdgeChannel, CloneReproducesModel) {
  channel::GilbertElliottModel ge(0.2, 0.3, 0.01, 0.9);
  auto clone = ge.clone();
  EXPECT_NEAR(clone->steady_state_rate(), ge.steady_state_rate(), 1e-12);
  mobiweb::Rng rng_a(5);
  mobiweb::Rng rng_b(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ge.next_corrupted(rng_a), clone->next_corrupted(rng_b));
  }
}

TEST(EdgeCore, EmptyDocumentCannotBePublishedForFetch) {
  mobiweb::Server server;
  server.publish_xml("empty", "<paper/>");
  mobiweb::BrowseSession session(server);
  // Linearized payload is empty: the transmitter must refuse rather than
  // divide by zero somewhere downstream.
  EXPECT_THROW(session.fetch("empty"), ContractViolation);
}

TEST(EdgeCore, WhitespaceOnlyQueryBehavesLikeEmpty) {
  mobiweb::Server server;
  server.publish_xml("d", "<paper><para>wireless things</para></paper>");
  const auto hits = server.search("   \t  ");
  EXPECT_TRUE(hits.empty());
}

TEST(EdgeCore, LodCoarserThanDocumentStructureStillWorks) {
  mobiweb::Server server;
  server.publish_xml("flat", "<paper><para>one single paragraph of words "
                             "about wireless documents</para></paper>");
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.0;
  mobiweb::BrowseSession session(server, cfg);
  for (const auto lod : {doc::Lod::kDocument, doc::Lod::kSection,
                         doc::Lod::kSubsection, doc::Lod::kParagraph}) {
    mobiweb::FetchOptions opts;
    opts.lod = lod;
    const auto r = session.fetch("flat", opts);
    EXPECT_TRUE(r.session.completed) << doc::lod_name(lod);
    EXPECT_NE(r.text.find("wireless"), std::string::npos);
  }
}
