// Organizational units, recognizer, IC/QIC/MQIC, linearization.
#include <gtest/gtest.h>

#include <cmath>

#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "doc/lod.hpp"
#include "doc/recognizer.hpp"
#include "doc/unit.hpp"
#include "text/porter.hpp"
#include "util/check.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace xml = mobiweb::xml;
namespace text = mobiweb::text;

namespace {

// A small paper-like document. Keyword statistics are easy to hand-check:
// stems are deterministic through the Porter stemmer.
const char* kXml = R"(<paper>
  <abstract>
    <para>mobile web browsing over wireless channels</para>
  </abstract>
  <section>
    <title>Introduction</title>
    <para>mobile clients browse web documents</para>
    <para>bandwidth is scarce for mobile clients</para>
  </section>
  <section>
    <subsection>
      <para>redundancy encoding recovers corrupted packets</para>
    </subsection>
    <subsection>
      <para>caching keeps intact packets across rounds</para>
    </subsection>
  </section>
</paper>)";

doc::StructuralCharacteristic make_sc(const char* source = kXml) {
  const xml::Document parsed = xml::parse(source);
  doc::ScGenerator gen;
  return gen.generate(parsed);
}

}  // namespace

TEST(Lod, NamesRoundTrip) {
  for (int i = 0; i < doc::kLodCount; ++i) {
    const auto lod = static_cast<doc::Lod>(i);
    EXPECT_EQ(doc::lod_from_name(doc::lod_name(lod)), lod);
  }
  EXPECT_FALSE(doc::lod_from_name("bogus").has_value());
}

TEST(Lod, ElementMapping) {
  EXPECT_EQ(doc::lod_from_element("section"), doc::Lod::kSection);
  EXPECT_EQ(doc::lod_from_element("abstract"), doc::Lod::kSection);
  EXPECT_EQ(doc::lod_from_element("subsection"), doc::Lod::kSubsection);
  EXPECT_EQ(doc::lod_from_element("para"), doc::Lod::kParagraph);
  EXPECT_EQ(doc::lod_from_element("p"), doc::Lod::kParagraph);
  EXPECT_EQ(doc::lod_from_element("research-paper"), doc::Lod::kDocument);
  EXPECT_FALSE(doc::lod_from_element("em").has_value());
  EXPECT_FALSE(doc::lod_from_element("title").has_value());
}

TEST(Lod, Finer) {
  EXPECT_EQ(doc::finer(doc::Lod::kDocument), doc::Lod::kSection);
  EXPECT_EQ(doc::finer(doc::Lod::kSubsubsection), doc::Lod::kParagraph);
  EXPECT_EQ(doc::finer(doc::Lod::kParagraph), doc::Lod::kParagraph);
}

TEST(Unit, LabelsMatchPaperStyle) {
  EXPECT_EQ(doc::unit_label({}), "(document)");
  EXPECT_EQ(doc::unit_label({0}), "0");
  EXPECT_EQ(doc::unit_label({3, 2, 1}), "3.2.1");
}

TEST(Recognizer, StructureAndVirtualUnits) {
  const xml::Document parsed = xml::parse(kXml);
  const doc::OrgUnit root = doc::recognize(parsed);

  ASSERT_EQ(root.children.size(), 3u);  // abstract + 2 sections
  const doc::OrgUnit& abstract = root.children[0];
  EXPECT_EQ(abstract.lod, doc::Lod::kSection);
  // Paragraph under a section gets wrapped in a virtual subsection.
  ASSERT_EQ(abstract.children.size(), 1u);
  EXPECT_EQ(abstract.children[0].lod, doc::Lod::kSubsection);
  EXPECT_TRUE(abstract.children[0].virtual_unit);
  ASSERT_EQ(abstract.children[0].children.size(), 1u);
  EXPECT_EQ(abstract.children[0].children[0].lod, doc::Lod::kParagraph);

  const doc::OrgUnit& intro = root.children[1];
  EXPECT_EQ(intro.title, "Introduction");
  ASSERT_EQ(intro.children.size(), 1u);          // one virtual subsection
  EXPECT_EQ(intro.children[0].children.size(), 2u);  // holding both paragraphs

  const doc::OrgUnit& sec2 = root.children[2];
  ASSERT_EQ(sec2.children.size(), 2u);  // two real subsections
  EXPECT_FALSE(sec2.children[0].virtual_unit);
  // Paragraphs under subsections are NOT wrapped (no virtual subsubsection).
  EXPECT_EQ(sec2.children[0].children[0].lod, doc::Lod::kParagraph);
}

TEST(Recognizer, EmphasisMarksTokens) {
  const xml::Document parsed =
      xml::parse("<paper><para>plain <em>shiny thing</em> rest</para></paper>");
  const doc::OrgUnit root = doc::recognize(parsed);
  // The lone paragraph is wrapped: document -> virtual section -> virtual
  // subsection -> paragraph. Descend to the leaf.
  const doc::OrgUnit* leaf = &root;
  while (!leaf->children.empty()) leaf = &leaf->children[0];
  const doc::OrgUnit& para = *leaf;
  ASSERT_EQ(para.lod, doc::Lod::kParagraph);
  int emphasized = 0;
  for (const auto& t : para.own_tokens) emphasized += t.emphasized;
  EXPECT_EQ(emphasized, 2);
  EXPECT_EQ(para.own_tokens.size(), 4u);
}

TEST(Recognizer, TitleTokensEmphasized) {
  const xml::Document parsed =
      xml::parse("<paper><section><title>Grand Title</title><para>x y</para>"
                 "</section></paper>");
  const doc::OrgUnit root = doc::recognize(parsed);
  const doc::OrgUnit& sec = root.children[0];
  EXPECT_EQ(sec.title, "Grand Title");
  ASSERT_EQ(sec.own_tokens.size(), 2u);
  EXPECT_TRUE(sec.own_tokens[0].emphasized);
}

TEST(Recognizer, InterleavedTextBecomesVirtualParagraphs) {
  const xml::Document parsed = xml::parse(
      "<paper>lead-in text<section><para>body</para></section>trailing</paper>");
  const doc::OrgUnit root = doc::recognize(parsed);
  // lead-in -> virtual section (wrapping a paragraph), real section, trailing
  // -> another virtual section.
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_TRUE(root.children[0].virtual_unit);
  EXPECT_EQ(root.children[0].lod, doc::Lod::kSection);
  EXPECT_FALSE(root.children[1].virtual_unit);
  EXPECT_TRUE(root.children[2].virtual_unit);
}

TEST(Unit, FrontierAtEachLod) {
  const xml::Document parsed = xml::parse(kXml);
  doc::ScGenerator gen;
  const auto sc = gen.generate(parsed);
  const doc::OrgUnit& root = sc.root();

  EXPECT_EQ(doc::frontier_at(root, doc::Lod::kDocument).size(), 1u);
  EXPECT_EQ(doc::frontier_at(root, doc::Lod::kSection).size(), 3u);
  EXPECT_EQ(doc::frontier_at(root, doc::Lod::kSubsection).size(), 4u);
  EXPECT_EQ(doc::frontier_at(root, doc::Lod::kParagraph).size(), 5u);
  // No subsubsections exist: the frontier falls through to paragraphs.
  EXPECT_EQ(doc::frontier_at(root, doc::Lod::kSubsubsection).size(), 5u);
}

TEST(Unit, WalkVisitsAllWithPaths) {
  const xml::Document parsed = xml::parse(kXml);
  const doc::OrgUnit root = doc::recognize(parsed);
  std::size_t count = 0;
  doc::walk(root, [&](const doc::OrgUnit& u, const std::vector<std::size_t>& path) {
    ++count;
    EXPECT_EQ(doc::unit_at_path(root, path), &u);
  });
  EXPECT_EQ(count, root.subtree_units());
}

TEST(Weight, Formula) {
  // Most frequent keyword: weight exactly 1.
  EXPECT_DOUBLE_EQ(doc::keyword_weight(8, 8), 1.0);
  // Rarer keywords weigh more: 1 - log2(1/8) = 4.
  EXPECT_DOUBLE_EQ(doc::keyword_weight(1, 8), 4.0);
  EXPECT_DOUBLE_EQ(doc::keyword_weight(4, 8), 2.0);
  EXPECT_THROW(doc::keyword_weight(0, 8), mobiweb::ContractViolation);
  EXPECT_THROW(doc::keyword_weight(9, 8), mobiweb::ContractViolation);
}

TEST(Ic, RootIsOne) {
  const auto sc = make_sc();
  EXPECT_NEAR(sc.root().info_content, 1.0, 1e-12);
}

TEST(Ic, AdditiveRule) {
  const auto sc = make_sc();
  // Every interior unit's IC equals its own-token contribution plus the sum
  // of its children's ICs; for units without own tokens it is exactly the
  // children's sum.
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    if (u.is_leaf()) return;
    double child_sum = 0.0;
    for (const auto& c : u.children) child_sum += c.info_content;
    EXPECT_LE(child_sum, u.info_content + 1e-12);
    if (u.own_tokens.empty()) {
      EXPECT_NEAR(child_sum, u.info_content, 1e-12);
    }
  });
}

TEST(Ic, LeavesSumToOneWithoutTitles) {
  // No titles anywhere -> every keyword lives in a leaf -> leaf ICs sum to 1.
  const char* no_titles = R"(<paper>
    <section><para>alpha beta gamma</para><para>delta epsilon</para></section>
    <section><para>zeta eta theta alpha</para></section>
  </paper>)";
  const auto sc = make_sc(no_titles);
  double leaf_sum = 0.0;
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    if (u.is_leaf()) leaf_sum += u.info_content;
  });
  EXPECT_NEAR(leaf_sum, 1.0, 1e-12);
}

TEST(Ic, HandComputedExample) {
  // Document: "web web web cache" -> counts: web=3 (norm), cache=1.
  // w(web) = 1, w(cache) = 1 - log2(1/3) = 1 + log2(3).
  // denominator = 3*1 + 1*(1+log2(3)).
  const char* tiny = "<paper><para>web web web</para><para>cache</para></paper>";
  const auto sc = make_sc(tiny);
  const double w_cache = 1.0 + std::log2(3.0);
  const double denom = 3.0 + w_cache;
  const auto paras = doc::frontier_at(sc.root(), doc::Lod::kParagraph);
  ASSERT_EQ(paras.size(), 2u);
  EXPECT_NEAR(paras[0]->info_content, 3.0 / denom, 1e-12);
  EXPECT_NEAR(paras[1]->info_content, w_cache / denom, 1e-12);
}

TEST(Ic, EmptyDocumentIsZero) {
  const auto sc = make_sc("<paper><para></para></paper>");
  EXPECT_EQ(sc.root().info_content, 0.0);
  EXPECT_EQ(sc.weighted_total(), 0.0);
}

TEST(Query, NormalizedThroughSamePipeline) {
  doc::ScGenerator gen;
  const auto q = doc::Query::from_text("Browsing the mobile WEB", gen.extractor());
  // "the" dropped; browsing stemmed.
  EXPECT_EQ(q.terms().count(text::porter_stem("browsing")), 1);
  EXPECT_EQ(q.terms().count("mobil"), 1);
  EXPECT_EQ(q.terms().count("web"), 1);
  EXPECT_EQ(q.terms().count("the"), 0);
  EXPECT_EQ(q.total_occurrences(), 3);
}

TEST(Query, RepeatedWordWeights) {
  doc::ScGenerator gen;
  const auto q = doc::Query::from_text("web web cache", gen.extractor());
  EXPECT_EQ(q.norm(), 2);
  EXPECT_DOUBLE_EQ(q.weight("web"), 1.0);              // count = norm
  EXPECT_DOUBLE_EQ(q.weight(text::porter_stem("cache")), 2.0);  // 1 - log2(1/2)
  EXPECT_DOUBLE_EQ(q.weight("absent"), 0.0);
}

TEST(Qic, RootIsOneWhenQueryMatches) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("mobile web browsing", gen.extractor()));
  ASSERT_TRUE(scorer.query_matches());
  EXPECT_NEAR(scorer.qic(sc.root()), 1.0, 1e-12);
}

TEST(Qic, ZeroForUnitsWithoutQueryWords) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("caching", gen.extractor()));
  ASSERT_TRUE(scorer.query_matches());
  // Section 1 (Introduction) has no "caching": QIC must be 0 there.
  const auto& intro = sc.root().children[1];
  EXPECT_EQ(scorer.qic(intro), 0.0);
  // The subsection that talks about caching concentrates all the QIC mass.
  const auto& caching_sub = sc.root().children[2].children[1];
  EXPECT_NEAR(scorer.qic(caching_sub), 1.0, 1e-12);
}

TEST(Qic, AdditiveRule) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("mobile packets", gen.extractor()));
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    if (u.is_leaf()) return;
    double child_sum = 0.0;
    for (const auto& c : u.children) child_sum += scorer.qic(c);
    EXPECT_LE(child_sum, scorer.qic(u) + 1e-12);
    if (u.own_tokens.empty()) {
      EXPECT_NEAR(child_sum, scorer.qic(u), 1e-12);
    }
  });
}

TEST(Qic, NoMatchMeansAllZero) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("quantum entanglement", gen.extractor()));
  EXPECT_FALSE(scorer.query_matches());
  EXPECT_EQ(scorer.qic(sc.root()), 0.0);
}

TEST(Mqic, RootIsOne) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("mobile web", gen.extractor()));
  EXPECT_NEAR(scorer.mqic(sc.root()), 1.0, 1e-12);
}

TEST(Mqic, NonZeroWhereQicIsZero) {
  // Table 1 shows units with QIC = 0 but small nonzero MQIC (e.g. 3.2): the
  // sum form keeps the static-IC contribution alive.
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("caching", gen.extractor()));
  const auto& intro = sc.root().children[1];
  EXPECT_EQ(scorer.qic(intro), 0.0);
  EXPECT_GT(scorer.mqic(intro), 0.0);
  EXPECT_LT(scorer.mqic(intro), intro.info_content);
}

TEST(Mqic, LambdaIsOccurrenceRatio) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const auto q = doc::Query::from_text("mobile web", gen.extractor());
  const doc::ContentScorer scorer(sc, q);
  const double expected = static_cast<double>(sc.document_terms().total()) /
                          static_cast<double>(q.total_occurrences());
  EXPECT_DOUBLE_EQ(scorer.lambda(), expected);
}

TEST(Mqic, FallsBackToIcForEmptyQuery) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(sc, doc::Query::from_text("", gen.extractor()));
  // lambda = 0: MQIC reduces exactly to IC.
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    EXPECT_NEAR(scorer.mqic(u), u.info_content, 1e-12);
  });
}

TEST(Rows, LabelsInDocumentOrder) {
  const auto sc = make_sc();
  const auto rows = sc.rows();
  ASSERT_GE(rows.size(), 4u);
  EXPECT_EQ(rows[0].label, "(document)");
  EXPECT_EQ(rows[1].label, "0");
  EXPECT_EQ(rows[2].label, "0.0");
  EXPECT_EQ(rows[3].label, "0.0.0");
}

TEST(Linearize, IcOrderDescending) {
  const auto sc = make_sc();
  const doc::LinearDocument lin =
      doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
  ASSERT_EQ(lin.segments.size(), 5u);
  for (std::size_t i = 1; i < lin.segments.size(); ++i) {
    EXPECT_GE(lin.segments[i - 1].content, lin.segments[i].content);
  }
  // Offsets tile the payload.
  std::size_t expected_offset = 0;
  for (const auto& s : lin.segments) {
    EXPECT_EQ(s.offset, expected_offset);
    expected_offset += s.size;
  }
  EXPECT_EQ(expected_offset, lin.payload.size());
}

TEST(Linearize, DocumentOrderKeepsSequence) {
  const auto sc = make_sc();
  const doc::LinearDocument ranked =
      doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
  const doc::LinearDocument sequential = doc::linearize(
      sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kDocumentOrder});
  EXPECT_EQ(sequential.segments[0].label, "0.0.0");
  // Same bytes overall, different order (unless IC happens to be sorted).
  EXPECT_EQ(sequential.payload.size(), ranked.payload.size());
}

TEST(Linearize, QicOrderPutsQueryUnitFirst) {
  const auto sc = make_sc();
  doc::ScGenerator gen;
  const doc::ContentScorer scorer(
      sc, doc::Query::from_text("caching intact", gen.extractor()));
  const doc::LinearDocument lin = doc::linearize(
      sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kQic, .scorer = &scorer});
  // The caching paragraph is 2.1.0 in document order.
  EXPECT_EQ(lin.segments[0].label, "2.1.0");
}

TEST(Linearize, QicWithoutScorerThrows) {
  const auto sc = make_sc();
  EXPECT_THROW(
      doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kQic}),
      mobiweb::ContractViolation);
}

TEST(Linearize, ContentOfPrefixMonotone) {
  const auto sc = make_sc();
  const doc::LinearDocument lin =
      doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
  double prev = -1.0;
  for (std::size_t n = 0; n <= lin.payload.size(); n += 16) {
    const double c = lin.content_of_prefix(n);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(lin.content_of_prefix(lin.payload.size()), lin.total_content(), 1e-12);
  EXPECT_EQ(lin.content_of_prefix(0), 0.0);
}

TEST(Linearize, ContentOfRangeSplitsExactly) {
  const auto sc = make_sc();
  const doc::LinearDocument lin =
      doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
  const std::size_t mid = lin.payload.size() / 2;
  const double left = lin.content_of_range(0, mid);
  const double right = lin.content_of_range(mid, lin.payload.size());
  EXPECT_NEAR(left + right, lin.total_content(), 1e-12);
}

TEST(Linearize, SectionLodUsesWholeSections) {
  const auto sc = make_sc();
  const doc::LinearDocument lin =
      doc::linearize(sc, {.lod = doc::Lod::kSection, .rank = doc::RankBy::kIc});
  EXPECT_EQ(lin.segments.size(), 3u);
}
