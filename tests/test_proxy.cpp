// Edge proxy tier: reconnect reconciliation, origin failover with
// stale-replica flagging, the bounded replica cache, scripted cell handoffs,
// and the proxied resilient session driver on the real frame/CRC stack.
//
// The load-bearing safety property pinned here: a replica the origin did not
// vouch for is NEVER served with ServeOutcome::stale == false — every
// failover path flags it, and the session result carries the flag through to
// ended_stale / stale_frames accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "channel/handoff.hpp"
#include "channel/outage.hpp"
#include "fleet/cache.hpp"
#include "obs/metrics.hpp"
#include "proxy/origin.hpp"
#include "proxy/proxy.hpp"
#include "proxy/reconcile.hpp"
#include "proxy/session.hpp"
#include "transmit/receiver.hpp"
#include "transmit/resilient.hpp"
#include "util/check.hpp"

namespace channel = mobiweb::channel;
namespace fleet = mobiweb::fleet;
namespace proxy = mobiweb::proxy;
namespace transmit = mobiweb::transmit;
using mobiweb::ContractViolation;
using Window = channel::FaultSchedule::Window;

namespace {

fleet::CacheConfig small_corpus() {
  fleet::CacheConfig cc;
  cc.corpus_size = 4;
  cc.seed = 77;
  return cc;
}

proxy::OriginConfig origin_config() {
  proxy::OriginConfig oc;
  oc.corpus = small_corpus();
  return oc;
}

transmit::ReceiverConfig receiver_config(const fleet::CookedDocument& cooked,
                                         bool caching = true) {
  transmit::ReceiverConfig rc;
  rc.doc_id = cooked.transmitter.doc_id();
  rc.m = cooked.transmitter.m();
  rc.n = cooked.transmitter.n();
  rc.packet_size = cooked.transmitter.packet_size();
  rc.payload_size = cooked.transmitter.payload_size();
  rc.caching = caching;
  return rc;
}

}  // namespace

// ---------------------------------------------------------------------------
// proxy::reconcile — the pure reconciliation decision (also the fuzz target).

TEST(Reconcile, MatchingGenerationsKeepEverything) {
  proxy::PartialBitmap held;
  std::vector<proxy::CachedUnit> entries;
  for (const std::uint32_t u : {0u, 1u, 5u, 63u, 64u, 200u, 255u}) {
    held.set(u);
    entries.push_back({u, 7});
  }
  const proxy::ReconcileResult r = proxy::reconcile(held, entries, 7);
  EXPECT_EQ(r.kept.size(), 7u);
  EXPECT_TRUE(r.refetch.empty());
  EXPECT_TRUE(r.bitmap == held);
}

TEST(Reconcile, GenerationMismatchLandsInRefetch) {
  proxy::PartialBitmap held;
  held.set(3);
  held.set(9);
  const std::vector<proxy::CachedUnit> entries = {{3, 4}, {9, 5}};
  const proxy::ReconcileResult r = proxy::reconcile(held, entries, 5);
  ASSERT_EQ(r.kept.size(), 1u);
  EXPECT_EQ(r.kept[0], 9u);
  ASSERT_EQ(r.refetch.size(), 1u);
  EXPECT_EQ(r.refetch[0], 3u);
  EXPECT_TRUE(r.bitmap.test(9));
  EXPECT_FALSE(r.bitmap.test(3));
}

TEST(Reconcile, UnprovenancedHeldBitIsRefetched) {
  // A held packet with no generation record cannot be trusted: conservative
  // rule, never serve stale as fresh.
  proxy::PartialBitmap held;
  held.set(12);
  const proxy::ReconcileResult r = proxy::reconcile(held, {}, 0);
  EXPECT_TRUE(r.kept.empty());
  ASSERT_EQ(r.refetch.size(), 1u);
  EXPECT_EQ(r.refetch[0], 12u);
  EXPECT_EQ(r.bitmap.count(), 0u);
}

TEST(Reconcile, ConflictingRecordsRefetch) {
  // Duplicate records for one unit where any disagrees: all must match.
  proxy::PartialBitmap held;
  held.set(8);
  const std::vector<proxy::CachedUnit> entries = {{8, 2}, {8, 1}, {8, 2}};
  const proxy::ReconcileResult r = proxy::reconcile(held, entries, 2);
  EXPECT_TRUE(r.kept.empty());
  ASSERT_EQ(r.refetch.size(), 1u);
  EXPECT_EQ(r.refetch[0], 8u);
}

TEST(Reconcile, IgnoresOutOfRangeAndUnheldRecords) {
  proxy::PartialBitmap held;
  held.set(2);
  const std::vector<proxy::CachedUnit> entries = {
      {2, 3},
      {7, 3},       // unheld: ignored
      {300, 3},     // out of range: ignored
      {0xFFFFFFFFu, 9},  // out of range: ignored
  };
  const proxy::ReconcileResult r = proxy::reconcile(held, entries, 3);
  ASSERT_EQ(r.kept.size(), 1u);
  EXPECT_EQ(r.kept[0], 2u);
  EXPECT_TRUE(r.refetch.empty());
}

TEST(Reconcile, KeptAndRefetchPartitionTheHeldSet) {
  proxy::PartialBitmap held;
  std::vector<proxy::CachedUnit> entries;
  for (std::uint32_t u = 0; u < proxy::kReconcileUnits; u += 3) {
    held.set(u);
    entries.push_back({u, u % 2});  // alternating generations
  }
  const proxy::ReconcileResult r = proxy::reconcile(held, entries, 0);
  EXPECT_EQ(r.kept.size() + r.refetch.size(), held.count());
  proxy::PartialBitmap refetch_bits;
  for (const std::uint32_t u : r.refetch) {
    EXPECT_FALSE(r.bitmap.test(u));  // disjoint
    refetch_bits.set(u);
  }
  for (const std::uint32_t u : r.kept) {
    EXPECT_TRUE(r.bitmap.test(u));
    EXPECT_FALSE(refetch_bits.test(u));
  }
  EXPECT_EQ(r.bitmap.count(), static_cast<std::uint32_t>(r.kept.size()));
}

TEST(PartialBitmap, SetTestClearCountAndBounds) {
  proxy::PartialBitmap b;
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(255);
  b.set(256);   // out of range: ignored
  b.set(9999);  // out of range: ignored
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_FALSE(b.test(256));
  b.clear(63);
  b.clear(256);  // out of range: ignored
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

// ---------------------------------------------------------------------------
// channel::HandoffSchedule — scripted cell switches.

TEST(HandoffSchedule, ParseRoundTripsAndNormalizes) {
  const auto hs = channel::HandoffSchedule::parse("7, 2.5; 7 11.25");
  ASSERT_TRUE(hs.has_value());
  ASSERT_EQ(hs->times().size(), 3u);  // duplicate 7 collapsed
  EXPECT_DOUBLE_EQ(hs->times()[0], 2.5);
  EXPECT_DOUBLE_EQ(hs->times()[1], 7.0);
  EXPECT_DOUBLE_EQ(hs->times()[2], 11.25);
  const auto again = channel::HandoffSchedule::parse(hs->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->times(), hs->times());
}

TEST(HandoffSchedule, CountInIsHalfOpenLeftExclusive) {
  const channel::HandoffSchedule hs({1.0, 2.0, 3.0});
  EXPECT_EQ(hs.count_in(0.0, 3.0), 3u);   // (0, 3] includes 3
  EXPECT_EQ(hs.count_in(1.0, 2.0), 1u);   // excludes 1, includes 2
  EXPECT_EQ(hs.count_in(3.0, 10.0), 0u);
  EXPECT_EQ(hs.count_in(2.0, 2.0), 0u);   // empty interval
  EXPECT_EQ(hs.count_in(5.0, 4.0), 0u);   // inverted interval
}

TEST(HandoffSchedule, UntrustedInputDegradesGracefully) {
  EXPECT_FALSE(channel::HandoffSchedule::parse("1, two, 3").has_value());
  EXPECT_FALSE(channel::HandoffSchedule::parse("nan").has_value());
  EXPECT_FALSE(channel::HandoffSchedule::parse("inf").has_value());
  const auto blank = channel::HandoffSchedule::parse("   ");
  ASSERT_TRUE(blank.has_value());
  EXPECT_TRUE(blank->empty());
  const auto clamped = channel::HandoffSchedule::parse("-4, 2");
  ASSERT_TRUE(clamped.has_value());
  ASSERT_EQ(clamped->times().size(), 2u);
  EXPECT_DOUBLE_EQ(clamped->times()[0], 0.0);
  EXPECT_THROW(channel::HandoffSchedule({-1.0}), ContractViolation);
}

// ---------------------------------------------------------------------------
// proxy::OriginServer — generations + reachability.

TEST(OriginServer, GenerationCombinesTimeAndPublish) {
  proxy::OriginConfig oc = origin_config();
  oc.update_interval_s = 10.0;
  proxy::OriginServer origin(oc);
  EXPECT_EQ(origin.generation(0, 0.0), 0u);
  EXPECT_EQ(origin.generation(0, 25.0), 2u);
  origin.publish(0);
  EXPECT_EQ(origin.generation(0, 25.0), 3u);
  EXPECT_EQ(origin.generation(1, 25.0), 2u);  // publish is per document
  EXPECT_THROW(origin.publish(99), ContractViolation);
}

TEST(OriginServer, FetchRefusedDuringOutage) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{5.0, 10.0}});
  proxy::OriginServer origin(oc);
  const fleet::CacheKey key{0, 1.5};
  ASSERT_TRUE(origin.fetch(key, 1.0).has_value());
  EXPECT_FALSE(origin.fetch(key, 6.0).has_value());
  EXPECT_EQ(origin.refused(), 1);
  const auto back = origin.fetch(key, 12.0);
  ASSERT_TRUE(back.has_value());
  EXPECT_NE(back->doc, nullptr);
  EXPECT_EQ(origin.fetches(), 2);
}

TEST(OriginServer, ValidateReportsCurrencyOrRefuses) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{5.0, 10.0}});
  proxy::OriginServer origin(oc);
  const fleet::CacheKey key{2, 1.5};
  const auto ok = origin.validate(key, 0, 1.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
  EXPECT_FALSE(origin.validate(key, 0, 7.0).has_value());  // origin down
  origin.publish(2);
  const auto stale = origin.validate(key, 0, 11.0);
  ASSERT_TRUE(stale.has_value());
  EXPECT_FALSE(*stale);
}

// ---------------------------------------------------------------------------
// proxy::EdgeProxy — replica cache + failover.

TEST(EdgeProxy, ColdFetchThenFreshHit) {
  proxy::OriginServer origin(origin_config());
  proxy::EdgeProxy edge({}, origin);
  const fleet::CacheKey key{0, 1.5};
  const proxy::ServeOutcome first = edge.serve(key, 0.0);
  ASSERT_NE(first.doc, nullptr);
  EXPECT_EQ(first.source, proxy::ServeSource::kOriginFetch);
  EXPECT_FALSE(first.stale);
  const proxy::ServeOutcome second = edge.serve(key, 1.0);
  EXPECT_EQ(second.source, proxy::ServeSource::kFreshHit);
  EXPECT_FALSE(second.stale);
  EXPECT_EQ(second.doc, first.doc);  // same immutable cooked object
  EXPECT_EQ(edge.stats().origin_fetches, 1);
  EXPECT_EQ(edge.stats().fresh_hits, 1);
  EXPECT_TRUE(edge.holds(key));
}

TEST(EdgeProxy, PublishForcesRefresh) {
  proxy::OriginServer origin(origin_config());
  proxy::EdgeProxy edge({}, origin);
  const fleet::CacheKey key{1, 1.5};
  (void)edge.serve(key, 0.0);
  EXPECT_EQ(edge.replica_generation(key), 0u);
  origin.publish(1);
  const proxy::ServeOutcome r = edge.serve(key, 1.0);
  EXPECT_EQ(r.source, proxy::ServeSource::kRefreshed);
  EXPECT_FALSE(r.stale);
  EXPECT_EQ(r.generation, 1u);
  EXPECT_EQ(edge.replica_generation(key), 1u);
  EXPECT_EQ(edge.stats().refreshes, 1);
}

TEST(EdgeProxy, OriginFadeFailsOverStaleFlagged) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{5.0, 50.0}});
  proxy::OriginServer origin(oc);
  proxy::EdgeProxy edge({}, origin);
  const fleet::CacheKey key{0, 1.5};
  (void)edge.serve(key, 0.0);  // warm while the origin answers
  origin.publish(0);           // the replica is now genuinely behind
  const proxy::ServeOutcome r = edge.serve(key, 10.0);
  ASSERT_NE(r.doc, nullptr);
  EXPECT_EQ(r.source, proxy::ServeSource::kStaleFailover);
  EXPECT_TRUE(r.stale);  // the core invariant: failover is never unflagged
  EXPECT_EQ(r.generation, 0u);
  EXPECT_EQ(edge.stats().stale_serves, 1);
  EXPECT_EQ(edge.stats().failovers, 1);
}

TEST(EdgeProxy, ColdAndCutOffIsUnavailable) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{0.0, 100.0}});
  proxy::OriginServer origin(oc);
  proxy::EdgeProxy edge({}, origin);
  const proxy::ServeOutcome r = edge.serve({0, 1.5}, 1.0);
  EXPECT_EQ(r.doc, nullptr);
  EXPECT_EQ(r.source, proxy::ServeSource::kUnavailable);
  EXPECT_EQ(edge.stats().unavailable, 1);
  EXPECT_EQ(edge.resident(), 0u);
}

// The pinned acceptance property: sweeping serve times across a scripted
// origin fade, every serving that the origin could not validate at serve time
// is flagged stale, and every unflagged serving happened with the origin up.
TEST(EdgeProxy, StaleReplicaNeverServedUnflagged) {
  const std::vector<Window> windows = {{2.0, 4.0}, {6.0, 9.0}};
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(windows);
  oc.update_interval_s = 1.5;  // generations churn underneath
  proxy::OriginServer origin(oc);
  proxy::EdgeProxy edge({}, origin);
  const fleet::CacheKey key{3, 1.5};
  const auto origin_up_at = [&](double t) {
    for (const Window& w : windows) {
      if (t >= w.begin && t < w.end) return false;
    }
    return true;
  };
  for (double t = 0.0; t <= 10.0; t += 0.5) {
    const proxy::ServeOutcome r = edge.serve(key, t);
    if (!origin_up_at(t)) {
      ASSERT_NE(r.doc, nullptr);  // warmed at t=0, so failover always serves
      EXPECT_TRUE(r.stale) << "unflagged stale serving at t=" << t;
    } else {
      EXPECT_FALSE(r.stale) << "origin was up at t=" << t;
    }
  }
  EXPECT_GT(edge.stats().stale_serves, 0);
}

TEST(EdgeProxy, LruEvictsAndIcAdmissionFilters) {
  proxy::OriginServer origin(origin_config());
  // gamma 1.0 cooks the densest set (least redundancy per content byte);
  // gamma 3.0 the sparsest — same document, so only the denominator moves.
  const fleet::CacheKey dense{0, 1.0};
  const fleet::CacheKey sparse{0, 3.0};
  {
    proxy::EdgeProxy edge({.capacity = 1}, origin);
    (void)edge.serve(dense, 0.0);
    const proxy::ServeOutcome r = edge.serve(sparse, 1.0);
    ASSERT_NE(r.doc, nullptr);  // served even when not admitted
    EXPECT_EQ(edge.stats().admission_rejects, 1);
    EXPECT_TRUE(edge.holds(dense));
    EXPECT_FALSE(edge.holds(sparse));
    EXPECT_EQ(edge.serve(dense, 2.0).source, proxy::ServeSource::kFreshHit);
  }
  {
    proxy::EdgeProxy edge({.capacity = 1}, origin);
    (void)edge.serve(sparse, 0.0);
    (void)edge.serve(dense, 1.0);  // denser incoming displaces the victim
    EXPECT_EQ(edge.stats().evictions, 1);
    EXPECT_TRUE(edge.holds(dense));
    EXPECT_FALSE(edge.holds(sparse));
  }
}

TEST(EdgeProxy, MetricsMirrorServeOutcomes) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{5.0, 10.0}});
  proxy::OriginServer origin(oc);
  proxy::EdgeProxy edge({}, origin);
  mobiweb::obs::MetricsRegistry reg;
  edge.set_metrics(&reg);
  const fleet::CacheKey key{0, 1.5};
  (void)edge.serve(key, 0.0);  // origin fetch
  (void)edge.serve(key, 1.0);  // fresh hit
  (void)edge.serve(key, 6.0);  // stale failover
  EXPECT_EQ(reg.counter("proxy.edge.origin_fetches").value(), 1);
  EXPECT_EQ(reg.counter("proxy.edge.fresh_hits").value(), 1);
  EXPECT_EQ(reg.counter("proxy.edge.stale_serves").value(), 1);
  EXPECT_EQ(reg.counter("proxy.edge.failovers").value(), 1);
  edge.set_metrics(nullptr);
  (void)edge.serve(key, 11.0);
  EXPECT_EQ(reg.counter("proxy.edge.fresh_hits").value(), 1);  // detached
}

// ---------------------------------------------------------------------------
// transmit::ClientReceiver::reset_cache — the reconciliation hook.

TEST(ClientReceiver, ResetCacheDropsPacketsEvenWithCachingOn) {
  proxy::OriginServer origin(origin_config());
  const auto cooked = origin.corpus().get({0, 1.5});
  transmit::ClientReceiver rx(receiver_config(*cooked, /*caching=*/true),
                              cooked->transmitter.document().segments);
  // Feed just under m intact frames directly (no channel: frames arrive clean).
  const std::size_t feed = cooked->transmitter.m() - 1;
  for (std::size_t i = 0; i < feed; ++i) {
    rx.on_frame(mobiweb::ByteSpan(cooked->transmitter.frame(i)));
  }
  EXPECT_EQ(rx.intact_count(), feed);
  EXPECT_GT(rx.content_received(), 0.0);
  rx.on_round_end();  // caching on: a round boundary must NOT drop the cache
  EXPECT_EQ(rx.intact_count(), feed);
  rx.reset_cache();  // reconciliation drop is unconditional
  EXPECT_EQ(rx.intact_count(), 0u);
  EXPECT_EQ(rx.content_received(), 0.0);
  EXPECT_FALSE(rx.complete());
  // The cache is usable again after the drop.
  rx.on_frame(mobiweb::ByteSpan(cooked->transmitter.frame(0)));
  EXPECT_EQ(rx.intact_count(), 1u);
}

// ---------------------------------------------------------------------------
// proxy::ProxyResilientSession — the full driver on the real stack.

namespace {

struct SessionRig {
  proxy::OriginServer origin;
  proxy::EdgeProxy edge_a;
  proxy::EdgeProxy edge_b;
  channel::WirelessChannel ch;

  explicit SessionRig(proxy::OriginConfig oc = origin_config(),
                      double alpha = 0.0, std::uint64_t channel_seed = 1)
      : origin(oc), edge_a({.proxy_id = 0}, origin),
        edge_b({.proxy_id = 1}, origin),
        ch(channel::ChannelConfig{.seed = channel_seed},
           std::make_unique<channel::IidErrorModel>(alpha)) {}

  std::vector<proxy::EdgeProxy*> pool() { return {&edge_a, &edge_b}; }
};

}  // namespace

TEST(ProxyResilientSession, ValidatesConfigAndPool) {
  SessionRig rig;
  EXPECT_THROW(proxy::ProxyResilientSession({}, rig.ch), ContractViolation);
  EXPECT_THROW(proxy::ProxyResilientSession({nullptr}, rig.ch),
               ContractViolation);
  proxy::ProxySessionConfig cfg;
  cfg.retry.retry_budget = 0;
  EXPECT_THROW(proxy::ProxyResilientSession(rig.pool(), rig.ch, cfg),
               ContractViolation);
}

// With the origin always up and no handoffs, the proxied driver is the
// resilient driver plus an edge lookup: the transfer outcome over an
// identically-seeded channel matches ResilientSession field-for-field.
TEST(ProxyResilientSession, CleanOriginMatchesResilientSession) {
  const fleet::CacheKey key{0, 1.5};
  SessionRig rig(origin_config(), /*alpha=*/0.2, /*channel_seed=*/42);
  proxy::ProxyResilientSession session(rig.pool(), rig.ch);
  const proxy::ProxySessionResult got = session.run(key);

  // Fresh identical channel + the same cooked document through the plain
  // resilient driver.
  proxy::OriginServer origin2(origin_config());
  const auto cooked = origin2.corpus().get(key);
  transmit::ClientReceiver rx(receiver_config(*cooked),
                              cooked->transmitter.document().segments);
  channel::WirelessChannel ch2(channel::ChannelConfig{.seed = 42},
                               std::make_unique<channel::IidErrorModel>(0.2));
  transmit::ResilientSession plain(cooked->transmitter, rx, ch2, {});
  const transmit::ResilientResult want = plain.run();

  EXPECT_EQ(got.session.status, want.session.status);
  EXPECT_EQ(got.session.rounds, want.session.rounds);
  EXPECT_EQ(got.session.frames_sent, want.session.frames_sent);
  EXPECT_EQ(got.session.response_time, want.session.response_time);
  EXPECT_EQ(got.session.content_received, want.session.content_received);
  EXPECT_EQ(got.request_attempts, want.request_attempts);
  EXPECT_EQ(got.partial.units.size(), want.partial.units.size());
  // Edge accounting: one cold fetch, no failover, nothing stale.
  EXPECT_EQ(got.proxy.origin_fetches, 1);
  EXPECT_EQ(got.proxy.failovers, 0);
  EXPECT_EQ(got.proxy.stale_serves, 0);
  EXPECT_EQ(got.proxy.stale_frames, 0);
  EXPECT_FALSE(got.proxy.ended_stale);
}

TEST(ProxyResilientSession, ColdPoolDeadOriginDegradesOnBudget) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{0.0, 1e9}});
  SessionRig rig(oc);
  proxy::ProxySessionConfig cfg;
  cfg.retry.retry_budget = 4;
  proxy::ProxyResilientSession session(rig.pool(), rig.ch, cfg);
  const proxy::ProxySessionResult r = session.run({0, 1.5});
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kDegraded);
  EXPECT_EQ(r.request_attempts, 4);
  EXPECT_GT(r.proxy.failovers, 0);
  EXPECT_EQ(r.proxy.origin_suspensions, 0);  // the origin never came back
  EXPECT_EQ(r.session.frames_sent, 0);       // nothing was ever served
  EXPECT_TRUE(r.partial.empty());
  EXPECT_GT(r.backoff_total_s, 0.0);
}

TEST(ProxyResilientSession, RidesOutAnOriginFadeThenCompletes) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{0.0, 2.0}});
  SessionRig rig(oc);
  proxy::ProxyResilientSession session(rig.pool(), rig.ch);
  const proxy::ProxySessionResult r = session.run({0, 1.5});
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(r.proxy.origin_suspensions, 1);
  EXPECT_GT(r.request_attempts, 0);  // the wait consumed budget
  EXPECT_FALSE(r.proxy.ended_stale);
}

// A proxy warmed before an origin fade keeps serving through it — flagged.
// With a clean link the transfer completes in one round while stale: every
// banked packet is counted in stale_frames and the result says ended_stale.
TEST(ProxyResilientSession, CompletesStaleFlaggedDuringOriginFade) {
  proxy::OriginConfig oc = origin_config();
  oc.outage = std::make_shared<channel::FaultSchedule>(
      std::vector<Window>{{0.5, 1e9}});  // up only long enough for the warm
  SessionRig rig(oc);
  const fleet::CacheKey key{0, 1.5};
  rig.edge_a.warm(key, 0.0);
  rig.ch.advance(1.0);  // the session starts inside the origin fade
  proxy::ProxyResilientSession session(rig.pool(), rig.ch);
  const proxy::ProxySessionResult r = session.run(key);
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_TRUE(r.proxy.ended_stale);
  EXPECT_EQ(r.proxy.stale_serves, 1);
  EXPECT_EQ(r.proxy.failovers, 1);
  // Clean link, frames delivered in order: completion lands on the m-th.
  const auto cooked = rig.origin.corpus().get(key);
  EXPECT_EQ(r.proxy.stale_frames,
            static_cast<long>(cooked->transmitter.m()));
}

// Link outage stalls the transfer across a generation boundary: the resumed
// client revalidates (replica refreshed) and reconciliation drops the cached
// packets fetched under the old generation — stale units re-fetched, session
// still completes.
TEST(ProxyResilientSession, ResumeReconciliationRefetchesAcrossGenerations) {
  const fleet::CacheKey key{0, 1.5};
  // Scout the cooked geometry first: the origin's update interval must land
  // between the round-1 airtime and the resume time.
  fleet::DocumentCache scout(small_corpus());
  const auto cooked = scout.get(key);
  channel::WirelessChannel probe(channel::ChannelConfig{},
                                 std::make_unique<channel::IidErrorModel>(0.0));
  const double T = probe.transmit_time(cooked->frame_size);
  const std::size_t n = cooked->transmitter.n();
  const std::size_t m = cooked->transmitter.m();
  ASSERT_GE(m, 5u);
  const double round1_end = static_cast<double>(n) * T;

  proxy::OriginConfig oc = origin_config();
  // Generation 0 throughout round 1, generation 1 by the time the link
  // returns at round1_end + 40 (the backoff ladder overshoots past it).
  oc.update_interval_s = round1_end + 20.0;
  SessionRig rig(oc);
  // Window 1 swallows the first `lost` frames of round 1 (depart times
  // T..lost*T); window 2 starts at the round-1 boundary, so the round ends
  // inside a fade and the session suspends.
  const std::size_t lost = n - m + 3;
  rig.ch.set_outage(std::make_unique<channel::FaultSchedule>(
      std::vector<Window>{{0.5 * T, (static_cast<double>(lost) + 0.5) * T},
                          {round1_end, round1_end + 40.0}}));
  proxy::ProxySessionConfig cfg;
  cfg.retry.retry_budget = 64;
  proxy::ProxyResilientSession session(rig.pool(), rig.ch, cfg);
  const proxy::ProxySessionResult r = session.run(key);
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  EXPECT_EQ(r.outages_ridden, 1);
  EXPECT_GE(r.proxy.reconciliations, 1);
  // Round-1 survivors (everything but the `lost` head frames) were cached
  // under generation 0 and dropped on resume against the refreshed
  // generation-1 replica.
  EXPECT_EQ(r.proxy.packets_refetched, static_cast<long>(n - lost));
  EXPECT_GE(r.proxy.origin_fetches, 2);  // cold fetch + post-resume refresh
  EXPECT_FALSE(r.proxy.ended_stale);
}

// A scripted handoff mid-transfer rebinds to the next proxy of the pool; the
// generation is unchanged, so reconciliation keeps the cache and the resumed
// transfer needs no re-fetches.
TEST(ProxyResilientSession, ScriptedHandoffSwitchesProxyKeepingCache) {
  SessionRig rig(origin_config(), /*alpha=*/0.6, /*channel_seed=*/7);
  const fleet::CacheKey key{0, 1.5};
  proxy::ProxySessionConfig cfg;
  cfg.handoffs = channel::HandoffSchedule({1e-3});  // inside round 1 airtime
  cfg.retry.retry_budget = 64;
  proxy::ProxyResilientSession session(rig.pool(), rig.ch, cfg);
  const proxy::ProxySessionResult r = session.run(key);
  ASSERT_GT(r.session.rounds, 1);  // alpha 0.6 stalls round 1
  EXPECT_EQ(r.proxy.handoffs, 1);
  EXPECT_EQ(r.serving_proxy, 1u);  // moved from proxy 0 to proxy 1
  EXPECT_GE(r.proxy.reconciliations, 1);
  EXPECT_EQ(r.proxy.packets_refetched, 0);  // same generation: cache kept
  EXPECT_EQ(r.session.status, transmit::SessionStatus::kCompleted);
  // Both cells touched the edge tier.
  EXPECT_GT(rig.edge_a.stats().origin_fetches, 0);
  EXPECT_GT(rig.edge_b.stats().origin_fetches +
                rig.edge_b.stats().fresh_hits,
            0l);
}
