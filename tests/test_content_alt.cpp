// Alternative information-content definitions (§6 future work).
#include <gtest/gtest.h>

#include "doc/content.hpp"
#include "doc/content_alt.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace xml = mobiweb::xml;

namespace {

doc::StructuralCharacteristic make(const char* src) {
  doc::ScGenerator gen;
  return gen.generate(xml::parse(src));
}

const char* kDoc = R"(<paper>
  <section><para>wireless wireless wireless wireless channels</para></section>
  <section><para>boilerplate footer text</para></section>
</paper>)";

}  // namespace

TEST(LengthContent, RootIsOneAndAdditive) {
  const auto sc = make(kDoc);
  EXPECT_NEAR(doc::length_content(sc, sc.root()), 1.0, 1e-12);
  double child_sum = 0.0;
  for (const auto& c : sc.root().children) {
    child_sum += doc::length_content(sc, c);
  }
  EXPECT_NEAR(child_sum, 1.0, 1e-12);
}

TEST(LengthContent, ProportionalToBytes) {
  const auto sc = make("<paper><para>aaaa aaaa</para><para>bb</para></paper>");
  const auto leaves = doc::frontier_at(sc.root(), doc::Lod::kParagraph);
  ASSERT_EQ(leaves.size(), 2u);
  const double a = doc::length_content(sc, *leaves[0]);
  const double b = doc::length_content(sc, *leaves[1]);
  EXPECT_GT(a, b);
  EXPECT_NEAR(a / b, 9.0 / 2.0, 1e-9);
}

TEST(LengthContent, EmptyDocumentIsZero) {
  const auto sc = make("<paper/>");
  EXPECT_EQ(doc::length_content(sc, sc.root()), 0.0);
}

TEST(CorpusStats, DocumentFrequencies) {
  doc::CorpusStats corpus;
  corpus.add_document(make("<paper><para>wireless channels</para></paper>"));
  corpus.add_document(make("<paper><para>wireless cooking</para></paper>"));
  corpus.add_document(make("<paper><para>cooking recipes</para></paper>"));
  EXPECT_EQ(corpus.documents(), 3);
  EXPECT_EQ(corpus.document_frequency("wireless"), 2);
  EXPECT_EQ(corpus.document_frequency("cook"), 2);
  EXPECT_EQ(corpus.document_frequency("channel"), 1);
  EXPECT_EQ(corpus.document_frequency("absent"), 0);
  // Rarer across the corpus -> higher idf.
  EXPECT_GT(corpus.idf("channel"), corpus.idf("wireless"));
  EXPECT_GT(corpus.idf("absent"), corpus.idf("channel"));
}

TEST(TfIdf, RootNormalizesToOne) {
  doc::CorpusStats corpus;
  const auto sc = make(kDoc);
  corpus.add_document(sc);
  const doc::TfIdfScorer scorer(sc, corpus);
  EXPECT_NEAR(scorer.content(sc.root()), 1.0, 1e-12);
}

TEST(TfIdf, Additive) {
  doc::CorpusStats corpus;
  const auto sc = make(kDoc);
  corpus.add_document(sc);
  const doc::TfIdfScorer scorer(sc, corpus);
  doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
    if (u.is_leaf() || !u.own_tokens.empty()) return;
    double child_sum = 0.0;
    for (const auto& c : u.children) child_sum += scorer.content(c);
    EXPECT_NEAR(child_sum, scorer.content(u), 1e-12);
  });
}

TEST(TfIdf, CorpusCommonTermsDemoted) {
  // "boilerplate footer text" appears in every corpus document; "wireless"
  // only in the target. Under plain IC the boilerplate unit can outweigh;
  // under TF-IDF the distinctive section must win.
  doc::CorpusStats corpus;
  const auto target = make(kDoc);
  corpus.add_document(target);
  for (int i = 0; i < 6; ++i) {
    corpus.add_document(make(
        "<paper><para>boilerplate footer text appears everywhere</para></paper>"));
  }
  const doc::TfIdfScorer scorer(target, corpus);
  const auto leaves = doc::frontier_at(target.root(), doc::Lod::kParagraph);
  ASSERT_EQ(leaves.size(), 2u);
  const double wireless_unit = scorer.content(*leaves[0]);
  const double boilerplate_unit = scorer.content(*leaves[1]);
  EXPECT_GT(wireless_unit, boilerplate_unit * 1.5);

  // Contrast: the paper's static IC gives the boilerplate unit MORE weight
  // (its words are rarer within this one document than "wireless" x4).
  EXPECT_GT(leaves[1]->info_content, leaves[0]->info_content);
}

TEST(TfIdf, EmptyCorpusDegradesToTf) {
  doc::CorpusStats corpus;  // no documents
  const auto sc = make(kDoc);
  const doc::TfIdfScorer scorer(sc, corpus);
  // idf is the constant ln(1) + 1 = 1 for every term: content = tf share.
  const auto leaves = doc::frontier_at(sc.root(), doc::Lod::kParagraph);
  const double expected =
      static_cast<double>(leaves[0]->terms.total()) /
      static_cast<double>(sc.document_terms().total());
  EXPECT_NEAR(scorer.content(*leaves[0]), expected, 1e-12);
}
