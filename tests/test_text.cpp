// Text pipeline: tokenizer, stop words, Porter stemmer, keyword extractor.
#include <gtest/gtest.h>

#include "text/keywords.hpp"
#include "text/porter.hpp"
#include "text/stopwords.hpp"
#include "text/tokenize.hpp"

namespace text = mobiweb::text;

TEST(Tokenize, LowercasesAndSplits) {
  const auto words = text::tokenize_words("Hello, World! FOO-bar 123");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "hello");
  EXPECT_EQ(words[1], "world");
  EXPECT_EQ(words[2], "foo-bar");
  EXPECT_EQ(words[3], "123");
}

TEST(Tokenize, InternalApostrophe) {
  const auto words = text::tokenize_words("the client's state isn't 'quoted'");
  EXPECT_EQ(words, (std::vector<std::string>{"the", "client's", "state", "isn't",
                                             "quoted"}));
}

TEST(Tokenize, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(text::tokenize_words("").empty());
  EXPECT_TRUE(text::tokenize_words("... --- !!!").empty());
}

TEST(Tokenize, EmphasisFlagAttached) {
  const auto toks = text::tokenize("bold words", true);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_TRUE(toks[0].emphasized);
  EXPECT_TRUE(toks[1].emphasized);
  EXPECT_FALSE(text::tokenize("plain", false)[0].emphasized);
}

TEST(StopWords, DefaultListBehaves) {
  text::StopWordFilter f;
  EXPECT_TRUE(f.is_stop_word("the"));
  EXPECT_TRUE(f.is_stop_word("isn't"));
  EXPECT_FALSE(f.is_stop_word("wireless"));
  EXPECT_FALSE(f.is_stop_word("bandwidth"));
}

TEST(StopWords, FilterStream) {
  text::StopWordFilter f;
  const auto kept = f.filter({"the", "mobile", "web", "is", "weakly", "connected"});
  EXPECT_EQ(kept, (std::vector<std::string>{"mobile", "web", "weakly", "connected"}));
}

TEST(StopWords, AddRemove) {
  text::StopWordFilter f;
  f.add("document");
  EXPECT_TRUE(f.is_stop_word("document"));
  f.remove("document");
  EXPECT_FALSE(f.is_stop_word("document"));
  f.remove("the");
  EXPECT_FALSE(f.is_stop_word("the"));
}

TEST(StopWords, CustomList) {
  text::StopWordFilter f(std::unordered_set<std::string>{"foo"});
  EXPECT_TRUE(f.is_stop_word("foo"));
  EXPECT_FALSE(f.is_stop_word("the"));
  EXPECT_EQ(f.size(), 1u);
}

// Classic Porter test pairs from the published algorithm description.
struct StemCase {
  const char* in;
  const char* out;
};

class PorterSuite : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterSuite, Stems) {
  const auto& [in, out] = GetParam();
  EXPECT_EQ(text::porter_stem(in), out) << in;
}

INSTANTIATE_TEST_SUITE_P(
    Classic, PorterSuite,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(Porter, ShortWordsUnchanged) {
  EXPECT_EQ(text::porter_stem("a"), "a");
  EXPECT_EQ(text::porter_stem("is"), "is");
  EXPECT_EQ(text::porter_stem("be"), "be");
}

TEST(Porter, NonAlphaPassThrough) {
  EXPECT_EQ(text::porter_stem("19.2kbps"), "19.2kbps");
  EXPECT_EQ(text::porter_stem("e-mail"), "e-mail");
  EXPECT_EQ(text::porter_stem("x86"), "x86");
}

TEST(Porter, DomainWordsConsistent) {
  // browse/browsing/browsed collapse to one stem — essential so a query word
  // matches all inflections in a document.
  const std::string stem = text::porter_stem("browsing");
  EXPECT_EQ(text::porter_stem("browsed"), stem);
  EXPECT_EQ(text::porter_stem("browse"), stem);
  EXPECT_EQ(text::porter_stem("transmission"), text::porter_stem("transmissions"));
  EXPECT_EQ(text::porter_stem("caching"), text::porter_stem("cached"));
}

TEST(TermCounts, Basics) {
  text::TermCounts tc;
  tc.add("web", 3);
  tc.add("mobile");
  tc.add("web");
  EXPECT_EQ(tc.count("web"), 4);
  EXPECT_EQ(tc.count("mobile"), 1);
  EXPECT_EQ(tc.count("absent"), 0);
  EXPECT_EQ(tc.total(), 5);
  EXPECT_EQ(tc.max_count(), 4);
  EXPECT_EQ(tc.distinct(), 2u);
}

TEST(TermCounts, Merge) {
  text::TermCounts a;
  a.add("x", 2);
  text::TermCounts b;
  b.add("x", 1);
  b.add("y", 5);
  a.merge(b);
  EXPECT_EQ(a.count("x"), 3);
  EXPECT_EQ(a.count("y"), 5);
}

TEST(TermCounts, SortedDeterministic) {
  text::TermCounts tc;
  tc.add("b", 2);
  tc.add("a", 2);
  tc.add("c", 9);
  const auto sorted = tc.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "c");
  EXPECT_EQ(sorted[1].first, "a");  // tie broken alphabetically
  EXPECT_EQ(sorted[2].first, "b");
}

TEST(KeywordExtractor, FullPipeline) {
  text::KeywordExtractor ex;
  const auto tc = ex.extract_text(
      "The mobile clients are browsing; a mobile client browses the web.");
  // "the", "are", "a" dropped; mobile x2; client(s) stemmed together x2;
  // browsing/browses stemmed together x2; web x1.
  EXPECT_EQ(tc.count("mobil"), 2);
  EXPECT_EQ(tc.count("client"), 2);
  EXPECT_EQ(tc.count(text::porter_stem("browsing")), 2);
  EXPECT_EQ(tc.count("web"), 1);
  EXPECT_EQ(tc.count("the"), 0);
}

TEST(KeywordExtractor, StopWordsDropped) {
  text::KeywordExtractor ex;
  EXPECT_EQ(ex.normalize("the"), "");
  EXPECT_EQ(ex.normalize("wireless"), text::porter_stem("wireless"));
}

TEST(KeywordExtractor, ShortWordsDropped) {
  text::KeywordExtractor ex;
  EXPECT_EQ(ex.normalize("x"), "");
}

TEST(KeywordExtractor, EmphasisQualifies) {
  text::KeywordExtractor ex;
  // A stop word in bold still counts (specially formatted words qualify).
  EXPECT_NE(ex.normalize("the", /*emphasized=*/true), "");
  const std::vector<text::Token> toks = {{"the", true}, {"the", false}};
  const auto tc = ex.extract(toks);
  EXPECT_EQ(tc.count("the"), 1);
}

TEST(KeywordExtractor, OptionsRespected) {
  text::KeywordOptions opts;
  opts.stem = false;
  opts.drop_stop_words = false;
  opts.min_word_length = 1;
  text::KeywordExtractor ex(opts);
  const auto tc = ex.extract_text("the browsing");
  EXPECT_EQ(tc.count("the"), 1);
  EXPECT_EQ(tc.count("browsing"), 1);
  EXPECT_EQ(tc.count("brows"), 0);
}
