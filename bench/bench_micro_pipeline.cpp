// Micro-benchmarks: the server-side document pipeline — XML parsing, HTML
// structuring, Porter stemming, SC generation, QIC scoring. These bound how
// fast a proxy/gateway can index documents and answer queries (the paper
// notes "the computational overhead of QIC is quite low").
//
// BM_TransferSession/* additionally measure a full document transfer over a
// lossy channel with the observability sinks detached, attached, and
// attached with full event capture — the no-op-sink run is the overhead
// guarantee DESIGN.md makes for the obs layer.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "doc/recognizer.hpp"
#include "html/structurer.hpp"
#include "obs/trace.hpp"
#include "text/porter.hpp"
#include "text/tokenize.hpp"
#include "transmit/receiver.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "xml/parser.hpp"
#include "xml/serialize.hpp"

// The bundled paper document (same data the Table 1 harness uses).
#include "data_paper.hpp"

namespace doc = mobiweb::doc;
namespace bench = mobiweb::bench;

namespace {

void BM_XmlParse(benchmark::State& state) {
  const std::string source = bench::kPaperXml;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::xml::parse(source));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_XmlParse);

void BM_XmlWrite(benchmark::State& state) {
  const auto parsed = mobiweb::xml::parse(bench::kPaperXml);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::xml::write(parsed));
  }
}
BENCHMARK(BM_XmlWrite);

void BM_HtmlStructure(benchmark::State& state) {
  std::string page = "<html><head><title>T</title></head><body>";
  for (int s = 0; s < 10; ++s) {
    page += "<h1>Section " + std::to_string(s) + "</h1>";
    for (int p = 0; p < 5; ++p) {
      page += "<p>the quick brown fox jumps over the lazy dog again and "
              "<b>again</b> while browsing mobile web documents</p>";
    }
  }
  page += "</body></html>";
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::html::structure_html(page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(page.size()));
}
BENCHMARK(BM_HtmlStructure);

void BM_PorterStem(benchmark::State& state) {
  const std::vector<std::string> words = {
      "browsing",  "transmission", "characteristics", "organizational",
      "relational", "probabilities", "connectivity",  "retransmitted",
      "effectiveness", "multiresolution"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::text::porter_stem(words[i % words.size()]));
    ++i;
  }
}
BENCHMARK(BM_PorterStem);

void BM_ScGeneration(benchmark::State& state) {
  const auto parsed = mobiweb::xml::parse(bench::kPaperXml);
  const doc::ScGenerator gen;
  const auto tree = doc::recognize(parsed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(tree));
  }
}
BENCHMARK(BM_ScGeneration);

void BM_QicScoring(benchmark::State& state) {
  const doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(bench::kPaperXml));
  const auto query =
      doc::Query::from_text("browsing mobile web", gen.extractor());
  for (auto _ : state) {
    const doc::ContentScorer scorer(sc, query);
    double total = 0.0;
    doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
      total += scorer.qic(u) + scorer.mqic(u);
    });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_QicScoring);

void BM_Linearize(benchmark::State& state) {
  const doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(bench::kPaperXml));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc}));
  }
}
BENCHMARK(BM_Linearize);

// mode 0: no trace attached (the zero-cost guarantee), 1: trace with round
// summaries only, 2: trace with the full per-frame event log.
void BM_TransferSession(benchmark::State& state) {
  namespace channel = mobiweb::channel;
  namespace transmit = mobiweb::transmit;
  namespace obs = mobiweb::obs;
  const int mode = static_cast<int>(state.range(0));

  const doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(bench::kPaperXml));
  doc::LinearDocument linear =
      doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
  transmit::TransmitterConfig tc;
  tc.packet_size = 256;
  tc.gamma = 1.5;
  tc.doc_id = 1;
  const transmit::DocumentTransmitter tx(std::move(linear), tc);

  transmit::ReceiverConfig rc;
  rc.doc_id = 1;
  rc.m = tx.m();
  rc.n = tx.n();
  rc.packet_size = tc.packet_size;
  rc.payload_size = tx.payload_size();

  obs::SessionTrace trace;
  trace.capture_events(mode == 2);

  for (auto _ : state) {
    channel::ChannelConfig cc;
    cc.seed = 99;
    channel::WirelessChannel ch(cc, std::make_unique<channel::IidErrorModel>(0.2));
    transmit::ClientReceiver rx(rc, tx.document().segments);
    transmit::SessionConfig scfg;
    if (mode != 0) {
      trace.clear();
      scfg.trace = &trace;
    }
    transmit::TransferSession session(tx, rx, ch, scfg);
    benchmark::DoNotOptimize(session.run());
  }
}
BENCHMARK(BM_TransferSession)
    ->Arg(0)   // no-op sink
    ->Arg(1)   // round summaries
    ->Arg(2);  // full event capture

}  // namespace
