// Micro-benchmarks: the server-side document pipeline — XML parsing, HTML
// structuring, Porter stemming, SC generation, QIC scoring. These bound how
// fast a proxy/gateway can index documents and answer queries (the paper
// notes "the computational overhead of QIC is quite low").
//
// BM_TransferSession/* additionally measure a full document transfer over a
// lossy channel with the observability sinks detached, attached, and
// attached with full event capture — the no-op-sink run is the overhead
// guarantee DESIGN.md makes for the obs layer. BM_ProfilerScope/* make the
// same guarantee for the hot-path profiler: a detached MOBIWEB_PROFILE_SCOPE
// must cost one atomic load and a branch, nothing more.
//
// Two modes (same convention as bench_micro_coding):
//   * default — google-benchmark suite;
//   * --json[=PATH] — self-timed sweep in the "mobiweb-bench/1" schema, the
//     input scripts/bench_diff.py gates on.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.hpp"
#include "channel/channel.hpp"
#include "channel/error_model.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "doc/recognizer.hpp"
#include "html/structurer.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "text/porter.hpp"
#include "text/tokenize.hpp"
#include "transmit/receiver.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "xml/parser.hpp"
#include "xml/serialize.hpp"

// The bundled paper document (same data the Table 1 harness uses).
#include "data_paper.hpp"

namespace doc = mobiweb::doc;
namespace bench = mobiweb::bench;

namespace {

void BM_XmlParse(benchmark::State& state) {
  const std::string source = bench::kPaperXml;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::xml::parse(source));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_XmlParse);

void BM_XmlWrite(benchmark::State& state) {
  const auto parsed = mobiweb::xml::parse(bench::kPaperXml);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::xml::write(parsed));
  }
}
BENCHMARK(BM_XmlWrite);

void BM_HtmlStructure(benchmark::State& state) {
  std::string page = "<html><head><title>T</title></head><body>";
  for (int s = 0; s < 10; ++s) {
    page += "<h1>Section " + std::to_string(s) + "</h1>";
    for (int p = 0; p < 5; ++p) {
      page += "<p>the quick brown fox jumps over the lazy dog again and "
              "<b>again</b> while browsing mobile web documents</p>";
    }
  }
  page += "</body></html>";
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::html::structure_html(page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(page.size()));
}
BENCHMARK(BM_HtmlStructure);

void BM_PorterStem(benchmark::State& state) {
  const std::vector<std::string> words = {
      "browsing",  "transmission", "characteristics", "organizational",
      "relational", "probabilities", "connectivity",  "retransmitted",
      "effectiveness", "multiresolution"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::text::porter_stem(words[i % words.size()]));
    ++i;
  }
}
BENCHMARK(BM_PorterStem);

void BM_ScGeneration(benchmark::State& state) {
  const auto parsed = mobiweb::xml::parse(bench::kPaperXml);
  const doc::ScGenerator gen;
  const auto tree = doc::recognize(parsed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(tree));
  }
}
BENCHMARK(BM_ScGeneration);

void BM_QicScoring(benchmark::State& state) {
  const doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(bench::kPaperXml));
  const auto query =
      doc::Query::from_text("browsing mobile web", gen.extractor());
  for (auto _ : state) {
    const doc::ContentScorer scorer(sc, query);
    double total = 0.0;
    doc::walk(sc.root(), [&](const doc::OrgUnit& u, const std::vector<std::size_t>&) {
      total += scorer.qic(u) + scorer.mqic(u);
    });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_QicScoring);

void BM_Linearize(benchmark::State& state) {
  const doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(bench::kPaperXml));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        doc::linearize(sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc}));
  }
}
BENCHMARK(BM_Linearize);

// Shared fixture for the transfer-session measurements: the paper document
// linearized and wrapped in a transmitter, plus the matching receiver config.
struct TransferFixture {
  TransferFixture() : tx(make_transmitter()) {
    rc.doc_id = 1;
    rc.m = tx.m();
    rc.n = tx.n();
    rc.packet_size = 256;
    rc.payload_size = tx.payload_size();
  }

  static mobiweb::transmit::DocumentTransmitter make_transmitter() {
    const doc::ScGenerator gen;
    const auto sc = gen.generate(mobiweb::xml::parse(bench::kPaperXml));
    doc::LinearDocument linear = doc::linearize(
        sc, {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc});
    mobiweb::transmit::TransmitterConfig tc;
    tc.packet_size = 256;
    tc.gamma = 1.5;
    tc.doc_id = 1;
    return mobiweb::transmit::DocumentTransmitter(std::move(linear), tc);
  }

  // One full transfer over a fresh lossy channel; `trace` may be null.
  mobiweb::transmit::SessionResult run_once(mobiweb::obs::SessionTrace* trace) const {
    namespace channel = mobiweb::channel;
    namespace transmit = mobiweb::transmit;
    channel::ChannelConfig cc;
    cc.seed = 99;
    channel::WirelessChannel ch(cc,
                                std::make_unique<channel::IidErrorModel>(0.2));
    transmit::ClientReceiver rx(rc, tx.document().segments);
    transmit::SessionConfig scfg;
    if (trace != nullptr) {
      trace->clear();
      scfg.trace = trace;
    }
    transmit::TransferSession session(tx, rx, ch, scfg);
    return session.run();
  }

  mobiweb::transmit::DocumentTransmitter tx;
  mobiweb::transmit::ReceiverConfig rc;
};

// mode 0: no trace attached (the zero-cost guarantee), 1: trace with round
// summaries only, 2: trace with the full per-frame event log.
void BM_TransferSession(benchmark::State& state) {
  namespace obs = mobiweb::obs;
  const int mode = static_cast<int>(state.range(0));
  const TransferFixture fixture;
  obs::SessionTrace trace;
  trace.capture_events(mode == 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.run_once(mode == 0 ? nullptr : &trace));
  }
}
BENCHMARK(BM_TransferSession)
    ->Arg(0)   // no-op sink
    ->Arg(1)   // round summaries
    ->Arg(2);  // full event capture

// mode 0: bare loop body; 1: the body wrapped in MOBIWEB_PROFILE_SCOPE with
// no profiler attached — the detached guarantee, expected to match mode 0
// within noise; 2: the same scope with a profiler attached and accumulating.
void BM_ProfilerScope(benchmark::State& state) {
  namespace obs = mobiweb::obs;
  const int mode = static_cast<int>(state.range(0));
  obs::Profiler profiler;
  if (mode == 2) profiler.attach();
  int x = 0;
  for (auto _ : state) {
    if (mode == 0) {
      benchmark::DoNotOptimize(++x);
    } else {
      MOBIWEB_PROFILE_SCOPE("bench.scope");
      benchmark::DoNotOptimize(++x);
    }
  }
  if (mode == 2) obs::Profiler::detach();
}
BENCHMARK(BM_ProfilerScope)
    ->Arg(0)   // uninstrumented
    ->Arg(1)   // detached scope
    ->Arg(2);  // attached scope

// ---- self-timed JSON mode (the perf-regression gate's input) ----

// Mean nanoseconds per MOBIWEB_PROFILE_SCOPE enter+exit.
double scope_ns(bool attached) {
  namespace obs = mobiweb::obs;
  obs::Profiler profiler;
  if (attached) profiler.attach();
  constexpr int kInner = 256;
  const double ops = bench::measure_ops_per_s([&] {
    for (int i = 0; i < kInner; ++i) {
      MOBIWEB_PROFILE_SCOPE("bench.scope");
      bench::keep_alive(i);
    }
  });
  if (attached) obs::Profiler::detach();
  return 1e9 / (ops * kInner);
}

int emit_json(const std::string& path) {
  namespace obs = mobiweb::obs;
  const std::string source = bench::kPaperXml;
  const doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(source));
  const TransferFixture fixture;
  obs::SessionTrace trace;
  trace.capture_events(true);

  bench::JsonReport report("micro_pipeline");
  report.meta("xml_bytes", static_cast<double>(source.size()));
  report.metric("xml_parse_per_s", bench::measure_ops_per_s([&] {
                  benchmark::DoNotOptimize(mobiweb::xml::parse(source));
                }));
  report.metric("sc_generate_per_s", bench::measure_ops_per_s([&] {
                  benchmark::DoNotOptimize(
                      gen.generate(mobiweb::xml::parse(source)));
                }));
  report.metric("linearize_per_s", bench::measure_ops_per_s([&] {
                  benchmark::DoNotOptimize(doc::linearize(
                      sc,
                      {.lod = doc::Lod::kParagraph, .rank = doc::RankBy::kIc}));
                }));
  report.metric("transfer_detached_per_s", bench::measure_ops_per_s([&] {
                  benchmark::DoNotOptimize(fixture.run_once(nullptr));
                }));
  report.metric("transfer_capture_per_s", bench::measure_ops_per_s([&] {
                  benchmark::DoNotOptimize(fixture.run_once(&trace));
                }));
  report.metric("profiler_scope_detached_ns", scope_ns(false));
  report.metric("profiler_scope_attached_ns", scope_ns(true));
  return bench::emit_json(report.str(), path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = bench::json_request(argc, argv)) {
    return emit_json(*path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
