// Edge-proxy-tier ablation: what do edge replicas buy when the *origin* is
// the weak link?
//
// Sweeps origin outage duty-cycle {0, 0.25, 0.5} x edge warm-hit rate
// {0.0, 0.6, 0.9} through the fleet engine's proxied mode (FleetConfig::proxy)
// and reports per cell the session-time tails plus the edge-tier accounting
// (replica hits, stale serves, failovers, handoffs, origin suspensions,
// reconciliation refetches). The warm = 0.0 column is the direct-to-origin
// model under the same origin fades: every proxy attach is a miss, so each
// fetch rides the origin's availability — when the origin is down there is
// nothing cached to serve and the session suspends on the retry budget. Warm
// columns fail over to the stale-but-flagged replica instead, which is where
// the p99 separation comes from. A no-proxy `direct` row (legacy walk, origin
// modelled always-reachable) anchors the floor.
//
// Flags: --sessions=N, --origin-duty=D --warm=W (single cell instead of the
// sweep), --origin-down=SECONDS (mean origin fade), --update=SECONDS (origin
// publish interval), --handoff=RATE, --age=SECONDS, --proxies=P,
// --fetch-delay=SECONDS, --duty=D/--down=SECONDS (wireless-link fades on
// top), --gamma, --alpha, --corpus, --spread, --shards, --json[=PATH].
// MOBIWEB_FAST=1 shrinks the per-cell fleet but keeps the full key grid, so
// CI baselines stay key-compatible with full runs.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "channel/outage.hpp"
#include "fleet/engine.hpp"
#include "stats/describe.hpp"

namespace bench = mobiweb::bench;
namespace fleet = mobiweb::fleet;
using mobiweb::TextTable;

namespace {

struct Cell {
  double origin_duty;
  double warm;
};

std::size_t session_count(int argc, char** argv) {
  const double fallback = bench::fast_mode() ? 2000.0 : 6000.0;
  return static_cast<std::size_t>(
      bench::arg_double(argc, argv, "sessions", fallback));
}

fleet::FleetConfig base_config(int argc, char** argv) {
  fleet::FleetConfig cfg;
  cfg.corpus.corpus_size =
      static_cast<std::size_t>(bench::arg_double(argc, argv, "corpus", 32.0));
  cfg.corpus.seed = 6200;
  cfg.seed = 42;
  cfg.sessions = session_count(argc, argv);
  cfg.gammas = {bench::arg_double(argc, argv, "gamma", 1.5)};
  // Default alpha leaves most sessions one or two rounds short of decoding on
  // round 1, so the stalled-round path (handoff draws, re-validation) is live.
  cfg.alpha = bench::arg_double(argc, argv, "alpha", 0.45);
  cfg.shards = static_cast<std::size_t>(bench::arg_double(argc, argv, "shards", 0.0));
  cfg.request_delay = bench::arg_double(argc, argv, "delay", 1.0);
  cfg.arrival_spread_s = bench::arg_double(argc, argv, "spread", 60.0);
  const double duty = bench::arg_double(argc, argv, "duty", 0.0);
  if (duty > 0.0) {
    const double mean_down = bench::arg_double(argc, argv, "down", 8.0);
    cfg.outage = std::make_shared<mobiweb::channel::MarkovOutageModel>(
        mobiweb::channel::MarkovOutageModel::with_duty_cycle(duty, mean_down));
  }
  return cfg;
}

// Edge tier for one sweep cell. The origin's failure domain is independent of
// the wireless link: its own Markov prototype, cloned per session by the
// engine exactly like the link model.
fleet::FleetConfig cell_config(const fleet::FleetConfig& base, const Cell& cell,
                               int argc, char** argv) {
  fleet::FleetConfig cfg = base;
  fleet::FleetProxyConfig proxy;
  proxy.model.warm_hit = cell.warm;
  proxy.model.replica_age_mean_s = bench::arg_double(argc, argv, "age", 40.0);
  proxy.model.origin_fetch_delay_s =
      bench::arg_double(argc, argv, "fetch-delay", 0.5);
  proxy.model.handoff_rate = bench::arg_double(argc, argv, "handoff", 0.3);
  proxy.model.handoff_delay_s = 0.3;
  proxy.model.update_interval_s = bench::arg_double(argc, argv, "update", 15.0);
  proxy.model.proxies =
      static_cast<std::uint32_t>(bench::arg_double(argc, argv, "proxies", 8.0));
  if (cell.origin_duty > 0.0) {
    const double mean_down = bench::arg_double(argc, argv, "origin-down", 20.0);
    proxy.origin_outage = std::make_shared<mobiweb::channel::MarkovOutageModel>(
        mobiweb::channel::MarkovOutageModel::with_duty_cycle(cell.origin_duty,
                                                             mean_down));
  }
  cfg.proxy = std::move(proxy);
  return cfg;
}

std::vector<Cell> cells(int argc, char** argv) {
  const bool single = bench::flag_request(argc, argv, "origin-duty") ||
                      bench::flag_request(argc, argv, "warm");
  if (single) {
    return {{bench::arg_double(argc, argv, "origin-duty", 0.25),
             bench::arg_double(argc, argv, "warm", 0.6)}};
  }
  std::vector<Cell> out;
  for (const double duty : {0.0, 0.25, 0.5}) {
    for (const double warm : {0.0, 0.6, 0.9}) out.push_back({duty, warm});
  }
  return out;
}

std::string cell_key(const Cell& cell) {
  const auto pct = [](double v) {
    return std::to_string(static_cast<int>(v * 100.0 + 0.5));
  };
  return "proxy_o" + pct(cell.origin_duty) + "_w" + pct(cell.warm);
}

void session_metrics(bench::JsonReport& report, const std::string& key,
                     const fleet::FleetResult& r) {
  // Timing (gated, higher-is-better), then deterministic workload facts:
  report.metric(key + ".sessions_per_s", r.sessions_per_s());
  report.metric(key + ".completed", static_cast<double>(r.completed));
  // Informational (no gating suffix):
  report.metric(key + ".gave_up_count", static_cast<double>(r.gave_up));
  report.metric(key + ".degraded_count", static_cast<double>(r.degraded));
  report.metric(key + ".suspension_count", static_cast<double>(r.suspensions));
  // Session-time tails on the simulated clock (deterministic for a fixed
  // seed); the *_s_{p50,p95,p99,p999,mean} suffixes gate lower-is-better, so
  // a tail regression in the proxied walk fails CI on its own.
  const mobiweb::stats::TailSummary& t = r.session_time_tails;
  report.metric(key + ".session_time_s_mean", t.mean);
  report.metric(key + ".session_time_s_p50", t.p50);
  report.metric(key + ".session_time_s_p95", t.p95);
  report.metric(key + ".session_time_s_p99", t.p99);
  report.metric(key + ".session_time_s_p999", t.p999);
  report.metric(key + ".session_time_s_ci95", t.ci95);
}

void proxy_metrics(bench::JsonReport& report, const std::string& key,
                   const fleet::FleetProxyTotals& p) {
  report.metric(key + ".replica_hit_count", static_cast<double>(p.replica_hits));
  report.metric(key + ".stale_serve_count", static_cast<double>(p.stale_serves));
  report.metric(key + ".failover_count", static_cast<double>(p.failovers));
  report.metric(key + ".handoff_count", static_cast<double>(p.handoffs));
  report.metric(key + ".origin_fetch_count",
                static_cast<double>(p.origin_fetches));
  report.metric(key + ".origin_suspension_count",
                static_cast<double>(p.origin_suspensions));
  report.metric(key + ".reconciliation_count",
                static_cast<double>(p.reconciliations));
  report.metric(key + ".packet_refetch_count",
                static_cast<double>(p.packets_refetched));
  report.metric(key + ".stale_frame_count", static_cast<double>(p.stale_frames));
  report.metric(key + ".ended_stale_count",
                static_cast<double>(p.sessions_ended_stale));
  report.metric(key + ".origin_generation_bump_count",
                static_cast<double>(p.origin_generation_bumps));
  report.metric(key + ".reconcile_dropped_packet_count",
                static_cast<double>(p.reconcile_dropped_packets));
}

fleet::FleetResult run_config(const fleet::FleetConfig& cfg) {
  fleet::FleetEngine engine(cfg);
  return engine.run();
}

// --timeline[=PATH]: one telemetry-instrumented proxied cell (defaults to the
// sweep's middle cell; override with --origin-duty/--warm) emitting the
// "mobiweb-timeline/1" document — cross-tier spans (origin outages, stale
// failovers, handoffs, reconcile drops) ride along in the retained traces,
// and scripts/slo_check.py gates the "slo" section.
int emit_timeline(int argc, char** argv, const std::string& path) {
  fleet::FleetConfig cfg = base_config(argc, argv);
  const Cell cell{bench::arg_double(argc, argv, "origin-duty", 0.25),
                  bench::arg_double(argc, argv, "warm", 0.6)};
  cfg = cell_config(cfg, cell, argc, argv);
  cfg.tail_stats = true;
  fleet::FleetTelemetryConfig tc;
  tc.bucket_width_s = bench::arg_double(argc, argv, "bucket", 1.0);
  tc.trace_top_fraction = bench::arg_double(argc, argv, "trace-top", 0.01);
  tc.slo_tolerance = bench::arg_double(argc, argv, "slo-tolerance", 0.5);
  cfg.telemetry = tc;
  const fleet::FleetResult r = run_config(cfg);
  return bench::emit_json(fleet::timeline_document(r, cfg), path);
}

int emit_json(int argc, char** argv, const std::string& path) {
  const fleet::FleetConfig base = base_config(argc, argv);
  bench::JsonReport report("proxy");
  report.meta("sessions", static_cast<double>(base.sessions));
  report.meta("gamma", base.gammas[0]);
  report.meta("alpha", base.alpha);
  report.meta("corpus", static_cast<double>(base.corpus.corpus_size));
  report.meta("seed", static_cast<double>(base.seed));
  report.meta("link_duty", base.outage ? base.outage->outage_fraction() : 0.0);
  report.meta("origin_down_s", bench::arg_double(argc, argv, "origin-down", 20.0));
  report.meta("update_s", bench::arg_double(argc, argv, "update", 15.0));
  report.meta("handoff", bench::arg_double(argc, argv, "handoff", 0.3));
  // Direct-to-origin floor: the legacy walk, no edge tier, origin modelled
  // always-reachable. The honest same-fades comparison is the w0 column.
  const fleet::FleetResult direct = run_config(base);
  session_metrics(report, "direct", direct);
  for (const Cell& cell : cells(argc, argv)) {
    const fleet::FleetResult r =
        run_config(cell_config(base, cell, argc, argv));
    const std::string key = cell_key(cell);
    session_metrics(report, key, r);
    proxy_metrics(report, key, r.proxy);
  }
  return bench::emit_json(report.str(), path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = bench::flag_request(argc, argv, "timeline")) {
    return emit_timeline(argc, argv, *path);
  }
  if (const auto path = bench::json_request(argc, argv)) {
    return emit_json(argc, argv, *path);
  }
  const fleet::FleetConfig base = base_config(argc, argv);
  bench::print_header(
      "Edge proxy tier — origin fades vs edge warm-hit rate",
      "Fleet-engine sweep of the proxied walk: origin outage duty against\n"
      "edge replica warm-hit rate. warm = 0.0 is direct-to-origin under the\n"
      "same fades; warm columns fail over to stale-but-flagged replicas.");

  TextTable table({"origin duty", "warm", "completed", "degraded", "failovers",
                   "stale_sv", "handoffs", "o_susp", "refetched", "p50 s",
                   "p99 s", "sessions/s"});
  const fleet::FleetResult direct = run_config(base);
  table.add_row({"(direct)", "-", std::to_string(direct.completed),
                 std::to_string(direct.degraded), "-", "-", "-", "-", "-",
                 TextTable::fmt(direct.session_time_tails.p50, 2),
                 TextTable::fmt(direct.session_time_tails.p99, 2),
                 TextTable::fmt(direct.sessions_per_s(), 0)});
  for (const Cell& cell : cells(argc, argv)) {
    const fleet::FleetResult r = run_config(cell_config(base, cell, argc, argv));
    table.add_row({TextTable::fmt(cell.origin_duty, 2),
                   TextTable::fmt(cell.warm, 2), std::to_string(r.completed),
                   std::to_string(r.degraded),
                   std::to_string(r.proxy.failovers),
                   std::to_string(r.proxy.stale_serves),
                   std::to_string(r.proxy.handoffs),
                   std::to_string(r.proxy.origin_suspensions),
                   std::to_string(r.proxy.packets_refetched),
                   TextTable::fmt(r.session_time_tails.p50, 2),
                   TextTable::fmt(r.session_time_tails.p99, 2),
                   TextTable::fmt(r.sessions_per_s(), 0)});
  }
  bench::print_table(
      "Origin duty x edge warm-hit (sessions = " +
          std::to_string(base.sessions) +
          ", gamma = " + TextTable::fmt(base.gammas[0], 1) +
          ", alpha = " + TextTable::fmt(base.alpha, 2) + ")",
      table);
  return 0;
}
