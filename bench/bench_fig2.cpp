// Figure 2: "Number of cooked packets needed" — minimal N versus raw packets
// M for failure probabilities alpha = 0.1..0.5, at success rates S = 95% and
// S = 99% (two panels).
//
// --json[=PATH] additionally runs one traced transfer per alpha at the
// paper's document shape (M = 40, N from the S = 95% panel) and emits the
// per-round session traces plus the aggregated metrics registry, so the
// analytic N can be compared against observed round counts.
#include <string>
#include <vector>

#include "analysis/negbinom.hpp"
#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/transfer.hpp"
#include "util/rng.hpp"

using mobiweb::Rng;
using mobiweb::TextTable;
namespace analysis = mobiweb::analysis;
namespace bench = mobiweb::bench;
namespace obs = mobiweb::obs;
namespace sim = mobiweb::sim;

namespace {

constexpr double kAlphas[] = {0.1, 0.2, 0.3, 0.4, 0.5};

void panel(double success, const char* label) {
  TextTable table({"M", "alpha=0.1", "alpha=0.2", "alpha=0.3", "alpha=0.4",
                   "alpha=0.5"});
  for (int m = 10; m <= 100; m += 10) {
    std::vector<std::string> row = {std::to_string(m)};
    for (const double alpha : kAlphas) {
      row.push_back(std::to_string(analysis::optimal_cooked_packets(m, alpha, success)));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(std::string("Figure 2") + label, table);
}

std::string panel_json(double success) {
  std::string json = "{";
  for (int m = 10; m <= 100; m += 10) {
    if (m > 10) json += ", ";
    json += "\"" + std::to_string(m) + "\": [";
    bool first = true;
    for (const double alpha : kAlphas) {
      if (!first) json += ", ";
      json += std::to_string(analysis::optimal_cooked_packets(m, alpha, success));
      first = false;
    }
    json += "]";
  }
  json += "}";
  return json;
}

int run_json_mode(const std::string& path) {
  std::string json = "{\n  \"schema\": \"mobiweb-bench/1\",\n  \"bench\": \"fig2\",\n";
  json += "  \"alphas\": [0.1, 0.2, 0.3, 0.4, 0.5],\n";
  json += "  \"n_required\": {\"s95\": " + panel_json(0.95) +
          ",\n                 \"s99\": " + panel_json(0.99) + "},\n";

  // Empirical check: one traced document transfer per alpha with the N the
  // S = 95% panel prescribes for M = 40. Most sessions should finish in one
  // round; the traces record how close the analytic bound runs.
  obs::MetricsRegistry registry;
  json += "  \"sessions\": [\n";
  bool first = true;
  for (const double alpha : kAlphas) {
    sim::TransferConfig cfg;
    cfg.m = 40;
    cfg.n = analysis::optimal_cooked_packets(40, alpha, 0.95);
    cfg.alpha = alpha;
    obs::SessionTrace trace;
    trace.set_label("alpha=" + TextTable::fmt(alpha, 1));
    cfg.trace = &trace;
    const std::vector<double> profile(40, 1.0 / 40.0);
    Rng rng(2026 + static_cast<std::uint64_t>(alpha * 10));
    (void)sim::simulate_transfer(profile, cfg, rng);
    obs::aggregate_trace(trace, registry);
    if (!first) json += ",\n";
    json += "    " + trace.to_json();
    first = false;
  }
  json += "\n  ],\n";
  json += "  \"metrics\": " + registry.to_json() + "\n}\n";
  return bench::emit_json(json, path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = bench::json_request(argc, argv)) {
    return run_json_mode(*path);
  }
  bench::print_header(
      "Figure 2 — cooked packets N required vs raw packets M",
      "N = min{n : Pr(P <= n) >= S} under the negative binomial of §4.1.\n"
      "Expected shape: near-linear in M; slope grows with alpha (about 1.15x\n"
      "at alpha=0.1 up to about 2.4x at alpha=0.5).");
  panel(0.95, "a (S = 95%)");
  panel(0.99, "b (S = 99%)");
  return 0;
}
