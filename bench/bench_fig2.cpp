// Figure 2: "Number of cooked packets needed" — minimal N versus raw packets
// M for failure probabilities alpha = 0.1..0.5, at success rates S = 95% and
// S = 99% (two panels).
#include "analysis/negbinom.hpp"
#include "bench_common.hpp"

using mobiweb::TextTable;
namespace analysis = mobiweb::analysis;
namespace bench = mobiweb::bench;

namespace {

void panel(double success, const char* label) {
  TextTable table({"M", "alpha=0.1", "alpha=0.2", "alpha=0.3", "alpha=0.4",
                   "alpha=0.5"});
  for (int m = 10; m <= 100; m += 10) {
    std::vector<std::string> row = {std::to_string(m)};
    for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      row.push_back(std::to_string(analysis::optimal_cooked_packets(m, alpha, success)));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(std::string("Figure 2") + label, table);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2 — cooked packets N required vs raw packets M",
      "N = min{n : Pr(P <= n) >= S} under the negative binomial of §4.1.\n"
      "Expected shape: near-linear in M; slope grows with alpha (about 1.15x\n"
      "at alpha=0.1 up to about 2.4x at alpha=0.5).");
  panel(0.95, "a (S = 95%)");
  panel(0.99, "b (S = 99%)");
  return 0;
}
