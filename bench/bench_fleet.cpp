// Fleet-scale serving benchmark: one server process, a shared pre-encoded
// document cache, and 1k/10k/100k concurrent weakly-connected sessions run to
// termination on the sharded discrete-event engine (src/fleet).
//
// Reported per scale:
//   sessions/s      engine throughput (sessions retired per wall second)
//   kframes/s       engine throughput in analytic frames
//   agg Mbps        offered wire load on the *simulated* clock
//   makespan        last session end on the simulated clock
//   p50/p99         session-time tails on the simulated clock (exact order
//                   statistics; --json adds p95/p999/mean and a Student-t CI)
//   completed/gave_up and cache hit/miss accounting
//
// Flags: --sessions=N (single scale instead of the sweep), --million (adds an
// opt-in 1M-session scale), --shards=S, --gamma=G, --alpha=A, --corpus=D,
// --spread=SECONDS, --json[=PATH]. MOBIWEB_FAST=1 trims the sweep to a prefix
// (1k/10k) so CI baselines stay key-compatible with full runs.
// --timeline[=PATH] runs one telemetry-instrumented fleet instead (with
// --bucket=SECONDS, --trace-top=FRACTION, --slo-tolerance=DRIFT) and emits
// the "mobiweb-timeline/1" document scripts/slo_check.py gates on.
//
// Weak-connectivity / workload knobs (all default off = legacy behavior):
//   --duty=D        per-session Markov link fades with long-run outage duty D
//                   (mean fade --down=SECONDS, default 8); sessions suspend
//                   with backoff and can terminate degraded
//   --zipf=S        Zipf(S) document popularity instead of round-robin
//   --arrival=HZ    Poisson session arrivals at HZ instead of the uniform
//                   stagger over --spread
#include <cinttypes>
#include <memory>

#include "bench_common.hpp"
#include "channel/outage.hpp"
#include "fleet/engine.hpp"
#include "stats/describe.hpp"

namespace bench = mobiweb::bench;
namespace fleet = mobiweb::fleet;
using mobiweb::TextTable;

namespace {

struct Scale {
  std::size_t sessions;
  const char* label;
};

fleet::FleetConfig base_config(int argc, char** argv) {
  fleet::FleetConfig cfg;
  cfg.corpus.corpus_size =
      static_cast<std::size_t>(bench::arg_double(argc, argv, "corpus", 64.0));
  cfg.corpus.seed = 6200;
  cfg.seed = 42;
  cfg.gammas = {bench::arg_double(argc, argv, "gamma", 1.5)};
  cfg.alpha = bench::arg_double(argc, argv, "alpha", 0.1);
  cfg.shards = static_cast<std::size_t>(bench::arg_double(argc, argv, "shards", 0.0));
  cfg.request_delay = bench::arg_double(argc, argv, "delay", 1.0);
  cfg.arrival_spread_s = bench::arg_double(argc, argv, "spread", 60.0);
  cfg.zipf_s = bench::arg_double(argc, argv, "zipf", 0.0);
  cfg.arrival_rate_hz = bench::arg_double(argc, argv, "arrival", 0.0);
  const double duty = bench::arg_double(argc, argv, "duty", 0.0);
  if (duty > 0.0) {
    const double mean_down = bench::arg_double(argc, argv, "down", 8.0);
    cfg.outage = std::make_shared<mobiweb::channel::MarkovOutageModel>(
        mobiweb::channel::MarkovOutageModel::with_duty_cycle(duty, mean_down));
  }
  return cfg;
}

std::vector<Scale> scales(int argc, char** argv) {
  if (const auto v = bench::flag_request(argc, argv, "sessions"); v && !v->empty()) {
    const double n = bench::arg_double(argc, argv, "sessions", 10000.0);
    return {{static_cast<std::size_t>(n), "custom"}};
  }
  std::vector<Scale> out = {{1000, "1k"}, {10000, "10k"}};
  if (!bench::fast_mode()) out.push_back({100000, "100k"});
  if (bench::flag_request(argc, argv, "million")) out.push_back({1000000, "1m"});
  return out;
}

fleet::FleetResult run_scale(const fleet::FleetConfig& base, std::size_t sessions) {
  fleet::FleetConfig cfg = base;
  cfg.sessions = sessions;
  fleet::FleetEngine engine(cfg);
  return engine.run();
}

// --timeline[=PATH]: one telemetry-instrumented run emitting the
// "mobiweb-timeline/1" document (time-bucketed series over the simulated
// clock, derived SLO ratio series + verdicts, and the retained tail/failure
// traces as Perfetto traceEvents). The document carries no wall-clock value
// and nothing shard-dependent, so a fixed (seed, sessions) run renders
// byte-identical output at any --shards (pinned in tests and tsan_fleet.sh).
// scripts/slo_check.py consumes the "slo" section as a CI gate.
int emit_timeline(int argc, char** argv, const std::string& path) {
  fleet::FleetConfig cfg = base_config(argc, argv);
  cfg.sessions = static_cast<std::size_t>(bench::arg_double(
      argc, argv, "sessions", bench::fast_mode() ? 2000.0 : 10000.0));
  cfg.tail_stats = true;
  fleet::FleetTelemetryConfig tc;
  tc.bucket_width_s = bench::arg_double(argc, argv, "bucket", 1.0);
  tc.trace_top_fraction = bench::arg_double(argc, argv, "trace-top", 0.01);
  tc.slo_tolerance = bench::arg_double(argc, argv, "slo-tolerance", 0.5);
  cfg.telemetry = tc;
  fleet::FleetEngine engine(cfg);
  const fleet::FleetResult r = engine.run();
  return bench::emit_json(fleet::timeline_document(r, cfg), path);
}

int emit_json(int argc, char** argv, const std::string& path) {
  const fleet::FleetConfig base = base_config(argc, argv);
  bench::JsonReport report("fleet");
  report.meta("gamma", base.gammas[0]);
  report.meta("alpha", base.alpha);
  report.meta("corpus", static_cast<double>(base.corpus.corpus_size));
  report.meta("spread_s", base.arrival_spread_s);
  report.meta("seed", static_cast<double>(base.seed));
  report.meta("duty", base.outage ? base.outage->outage_fraction() : 0.0);
  report.meta("zipf", base.zipf_s);
  report.meta("arrival_hz", base.arrival_rate_hz);
  for (const auto& [sessions, label] : scales(argc, argv)) {
    const fleet::FleetResult r = run_scale(base, sessions);
    const std::string key = std::string("fleet_") + label;
    // Timing metrics (gated, higher-is-better):
    report.metric(key + ".sessions_per_s", r.sessions_per_s());
    report.metric(key + ".frames_per_s", r.frames_per_s());
    // Deterministic workload facts (gated but exactly reproducible):
    report.metric(key + ".aggregate_mbps", r.aggregate_mbps());
    report.metric(key + ".completed", static_cast<double>(r.completed));
    // Informational (no gating suffix):
    report.metric(key + ".gave_up_count", static_cast<double>(r.gave_up));
    report.metric(key + ".degraded_count", static_cast<double>(r.degraded));
    report.metric(key + ".frames_lost_count", static_cast<double>(r.frames_lost));
    report.metric(key + ".suspension_count", static_cast<double>(r.suspensions));
    report.metric(key + ".makespan", r.makespan_s);
    report.metric(key + ".cache_hit_count", static_cast<double>(r.cache_hits));
    report.metric(key + ".cache_miss_count", static_cast<double>(r.cache_misses));
    // Session-time distribution on the simulated clock (deterministic for a
    // fixed seed). The _p50/_p95/_p99/_p999/_mean suffixes strip back to
    // *_s, so bench_diff.py gates them lower-is-better — a p99 regression
    // fails CI even when the mean is flat; _ci95 stays informational.
    const mobiweb::stats::TailSummary& t = r.session_time_tails;
    report.metric(key + ".session_time_s_mean", t.mean);
    report.metric(key + ".session_time_s_p50", t.p50);
    report.metric(key + ".session_time_s_p95", t.p95);
    report.metric(key + ".session_time_s_p99", t.p99);
    report.metric(key + ".session_time_s_p999", t.p999);
    report.metric(key + ".session_time_s_ci95", t.ci95);
  }
  return bench::emit_json(report.str(), path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = bench::flag_request(argc, argv, "timeline")) {
    return emit_timeline(argc, argv, *path);
  }
  if (const auto path = bench::json_request(argc, argv)) {
    return emit_json(argc, argv, *path);
  }
  const fleet::FleetConfig base = base_config(argc, argv);
  bench::print_header(
      "Fleet engine — one server, a shared cooked-packet cache, 100k sessions",
      "Sharded discrete-event replay of the paper's client state machine at\n"
      "server scale: every session draws IDA-encoded frames from one shared\n"
      "pre-encoded DocumentCache (encode once per (document, gamma)).");

  TextTable table({"sessions", "shards", "completed", "gave_up", "degraded",
                   "Mframes", "agg Mbps", "makespan s", "p50 s", "p99 s",
                   "wall s", "sessions/s", "cache h/m"});
  for (const auto& [sessions, label] : scales(argc, argv)) {
    const fleet::FleetResult r = run_scale(base, sessions);
    table.add_row(
        {std::to_string(r.sessions), std::to_string(r.shards),
         std::to_string(r.completed), std::to_string(r.gave_up),
         std::to_string(r.degraded),
         TextTable::fmt(static_cast<double>(r.frames_sent) / 1e6, 2),
         TextTable::fmt(r.aggregate_mbps(), 2), TextTable::fmt(r.makespan_s, 1),
         TextTable::fmt(r.session_time_tails.p50, 2),
         TextTable::fmt(r.session_time_tails.p99, 2),
         TextTable::fmt(r.elapsed_s, 2), TextTable::fmt(r.sessions_per_s(), 0),
         std::to_string(r.cache_hits) + "/" + std::to_string(r.cache_misses)});
  }
  bench::print_table("Fleet scaling (gamma = " + TextTable::fmt(base.gammas[0], 1) +
                         ", alpha = " + TextTable::fmt(base.alpha, 2) + ")",
                     table);
  return 0;
}
