// Ablation: packet size s_p under a bit-error channel.
//
// The paper fixes s_p = 256 bytes (Table 2). Packet size trades two effects:
// smaller packets waste a larger fraction of airtime on the O = 4 bytes of
// framing, while larger packets are corrupted more often at a given bit error
// rate (alpha = 1 - (1-BER)^bits) and lose more data per corruption. This
// sweep locates the sweet spot at several BERs and checks where 256 sits.
#include <cmath>

#include "bench_common.hpp"
#include "sim/transfer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
using mobiweb::Rng;
using mobiweb::TextTable;

namespace {

double mean_time(std::size_t packet_size, double ber, int docs,
                 std::uint64_t seed) {
  const std::size_t doc_size = 10240;
  const std::size_t overhead = 4;
  const double bits = static_cast<double>(packet_size + overhead) * 8.0;
  const double alpha = 1.0 - std::pow(1.0 - ber, bits);
  if (alpha >= 0.95) return -1.0;  // channel unusable at this size

  sim::TransferConfig cfg;
  cfg.m = static_cast<int>((doc_size + packet_size - 1) / packet_size);
  cfg.n = static_cast<int>(std::ceil(1.5 * cfg.m));
  cfg.alpha = alpha;
  cfg.caching = true;
  cfg.time_per_packet =
      static_cast<double>(packet_size + overhead) * 8.0 / 19200.0;
  cfg.max_rounds = 200;

  const std::vector<double> content(static_cast<std::size_t>(cfg.m),
                                    1.0 / cfg.m);
  Rng rng(seed);
  mobiweb::RunningStats stats;
  for (int d = 0; d < docs; ++d) {
    stats.add(sim::simulate_transfer(content, cfg, rng).time);
  }
  return stats.mean();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — packet size s_p under a bit-error channel",
      "10240-byte documents, gamma = 1.5, caching, O = 4 bytes framing.\n"
      "alpha(s_p) = 1-(1-BER)^bits: small packets pay framing overhead,\n"
      "large ones get corrupted more often. '-' = channel unusable.\n"
      "BER 5e-5 corresponds to the paper's alpha ~ 0.1 at s_p = 256.");

  const int docs = bench::fast_mode() ? 2000 : 20000;
  TextTable table({"s_p (bytes)", "BER=1e-5", "BER=5e-5", "BER=1e-4",
                   "BER=2.5e-4"});
  for (const std::size_t sp : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    std::vector<std::string> row = {std::to_string(sp)};
    for (const double ber : {1e-5, 5e-5, 1e-4, 2.5e-4}) {
      const double t = mean_time(sp, ber, docs, 31000 + sp);
      row.push_back(t < 0 ? "-" : TextTable::fmt(t, 2));
    }
    table.add_row(std::move(row));
  }
  bench::print_table("Mean response time (s) for a relevant document", table);
  return 0;
}
