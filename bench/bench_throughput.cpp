// Throughput experiment — the measurement the paper lists as ongoing work:
// "we are also conducting experiments to measure the throughput of our system
// in browsing web documents when compared with traditional web browsing
// paradigm."
//
// Metric: documents finished (fully loaded or confidently discarded) per hour
// of airtime, over a mixed session (I = 0.5, F = 0.5), comparing:
//   conventional  — document order, no redundancy, full-reload recovery
//   ft-only       — document order, IDA gamma=1.5 + cache
//   multires-only — paragraph order, no redundancy, full-reload recovery
//   full system   — paragraph order, IDA gamma=1.5 + cache
#include "bench_common.hpp"
#include "sim/experiment.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
namespace doc = mobiweb::doc;
using mobiweb::TextTable;

namespace {

double docs_per_hour(double alpha, doc::Lod lod, double gamma, bool caching) {
  sim::ExperimentParams p;
  p.alpha = alpha;
  p.lod = lod;
  p.gamma = gamma;
  p.caching = caching;
  p.irrelevant_fraction = 0.5;
  p.relevance_threshold = 0.5;
  p.repetitions = bench::repetitions();
  p.documents_per_session = bench::documents_per_session();
  p.max_rounds = 200;
  p.seed = 6100 + static_cast<std::uint64_t>(alpha * 100) +
           static_cast<std::uint64_t>(lod);
  const auto r = sim::run_browsing_experiment(p);
  return 3600.0 / r.response_time.mean;
}

// "mobiweb-bench/1" machine-readable run over a reduced alpha grid; the
// docs-per-hour keys end in `_per_hour` so bench_diff treats them as
// higher-is-better.
int emit_json(const std::string& path) {
  bench::JsonReport report("throughput");
  report.meta("irrelevant_fraction", 0.5);
  report.meta("relevance_threshold", 0.5);
  report.meta("repetitions", static_cast<double>(bench::repetitions()));
  for (const double alpha : {0.1, 0.3, 0.5}) {
    const std::string key = "alpha_" + TextTable::fmt(alpha, 1);
    report.metric(key + ".conventional.docs_per_hour",
                  docs_per_hour(alpha, doc::Lod::kDocument, 1.0, false));
    report.metric(key + ".full_system.docs_per_hour",
                  docs_per_hour(alpha, doc::Lod::kParagraph, 1.5, true));
  }
  return bench::emit_json(report.str(), path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = bench::json_request(argc, argv)) {
    return emit_json(*path);
  }
  bench::print_header(
      "Throughput — documents browsed per hour vs traditional browsing",
      "Mixed session (I = 0.5, F = 0.5), 19.2 kbps. 'conventional' is plain\n"
      "sequential transmission with whole-document reloads on corruption.");

  TextTable table({"alpha", "conventional", "ft-only", "multires-only",
                   "full system", "speedup"});
  for (const double alpha : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double conventional =
        docs_per_hour(alpha, doc::Lod::kDocument, 1.0, false);
    const double ft_only = docs_per_hour(alpha, doc::Lod::kDocument, 1.5, true);
    const double mr_only = docs_per_hour(alpha, doc::Lod::kParagraph, 1.0, false);
    const double full = docs_per_hour(alpha, doc::Lod::kParagraph, 1.5, true);
    table.add_row({TextTable::fmt(alpha, 2), TextTable::fmt(conventional, 1),
                   TextTable::fmt(ft_only, 1), TextTable::fmt(mr_only, 1),
                   TextTable::fmt(full, 1),
                   TextTable::fmt(full / conventional, 2) + "x"});
  }
  bench::print_table("Documents per hour of airtime", table);
  return 0;
}
