// Table 2: the default simulation parameter settings, as consumed by the
// experiment runner (printed from the live defaults, not hard-coded prose, so
// any drift between code and documentation shows up here).
#include "bench_common.hpp"
#include "sim/experiment.hpp"

namespace bench = mobiweb::bench;

int main() {
  bench::print_header("Table 2 — parameter settings",
                      "Defaults of sim::ExperimentParams (paper Table 2).");
  const mobiweb::sim::ExperimentParams params;
  std::printf("\n%s", mobiweb::sim::describe_parameters(params).c_str());
  std::printf("\nDerived: time per cooked packet = %.4f s; document at document\n"
              "LOD needs M = %d intact packets = %.2f s minimum.\n",
              params.time_per_packet(), params.m(),
              params.m() * params.time_per_packet());
  return 0;
}
