// Table 2: the default simulation parameter settings, as consumed by the
// experiment runner (printed from the live defaults, not hard-coded prose, so
// any drift between code and documentation shows up here).
//
// --json[=PATH] emits the defaults as JSON and, to show what the settings
// produce, runs a short metrics-instrumented browsing experiment and includes
// the aggregated per-round/per-session histograms.
#include <string>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"

namespace bench = mobiweb::bench;
namespace obs = mobiweb::obs;
namespace sim = mobiweb::sim;

namespace {

int run_json_mode(const std::string& path) {
  sim::ExperimentParams params;
  std::string json = "{\n  \"schema\": \"mobiweb-bench/1\",\n  \"bench\": \"table2\",\n  \"parameters\": {\n";
  json += "    \"packet_size\": " + std::to_string(params.document.packet_size) + ",\n";
  json += "    \"doc_size\": " + std::to_string(params.document.doc_size) + ",\n";
  json += "    \"overhead\": " + std::to_string(params.overhead) + ",\n";
  json += "    \"m\": " + std::to_string(params.m()) + ",\n";
  json += "    \"n\": " + std::to_string(params.n()) + ",\n";
  json += "    \"bandwidth_bps\": " + std::to_string(params.bandwidth_bps) + ",\n";
  json += "    \"gamma\": " + std::to_string(params.gamma) + ",\n";
  json += "    \"alpha\": " + std::to_string(params.alpha) + ",\n";
  json += "    \"irrelevant_fraction\": " + std::to_string(params.irrelevant_fraction) + ",\n";
  json += "    \"relevance_threshold\": " + std::to_string(params.relevance_threshold) + ",\n";
  json += "    \"caching\": " + std::string(params.caching ? "true" : "false") + ",\n";
  json += "    \"documents_per_session\": " + std::to_string(params.documents_per_session) + ",\n";
  json += "    \"repetitions\": " + std::to_string(params.repetitions) + ",\n";
  json += "    \"time_per_packet_s\": " + std::to_string(params.time_per_packet()) + "\n";
  json += "  },\n";

  // What the defaults yield: a short instrumented run aggregating every
  // document transfer into the metrics registry.
  obs::MetricsRegistry registry;
  params.repetitions = bench::fast_mode() ? 2 : 5;
  params.documents_per_session = bench::fast_mode() ? 20 : 50;
  params.metrics = &registry;
  const auto result = sim::run_browsing_experiment(params);
  json += "  \"sample_run\": {\n";
  json += "    \"repetitions\": " + std::to_string(params.repetitions) + ",\n";
  json += "    \"documents_per_session\": " +
          std::to_string(params.documents_per_session) + ",\n";
  json += "    \"mean_response_time_s\": " +
          std::to_string(result.response_time.mean) + ",\n";
  json += "    \"stall_fraction\": " + std::to_string(result.stall_fraction) + ",\n";
  json += "    \"gave_up_fraction\": " + std::to_string(result.gave_up_fraction) + ",\n";
  json += "    \"metrics\": " + registry.to_json() + "\n  }\n}\n";
  return bench::emit_json(json, path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = bench::json_request(argc, argv)) {
    return run_json_mode(*path);
  }
  bench::print_header("Table 2 — parameter settings",
                      "Defaults of sim::ExperimentParams (paper Table 2).");
  const mobiweb::sim::ExperimentParams params;
  std::printf("\n%s", mobiweb::sim::describe_parameters(params).c_str());
  std::printf("\nDerived: time per cooked packet = %.4f s; document at document\n"
              "LOD needs M = %d intact packets = %.2f s minimum.\n",
              params.time_per_packet(), params.m(),
              params.m() * params.time_per_packet());
  return 0;
}
