// Ablation: IDA redundancy (the paper's scheme) vs selective-repeat ARQ vs
// naive full reload, as a function of feedback latency.
//
// With an instantaneous back channel ARQ is bandwidth-optimal: it resends
// exactly the corrupted packets. The paper's redundancy scheme spends gamma-1
// extra airtime up front but needs no per-round feedback — so as the
// feedback round trip grows (satellite links, deep fades, request queuing at
// the proxy) the crossover flips toward IDA. Naive reload (NoCaching, no
// redundancy) is the conventional HTTP behaviour both schemes beat.
#include "bench_common.hpp"
#include "sim/transfer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
using mobiweb::Rng;
using mobiweb::TextTable;

namespace {

enum class Scheme { kIda, kArq, kReload };

double mean_time(Scheme scheme, double alpha, double feedback_delay, int docs) {
  const int m = 40;
  const std::vector<double> content(m, 1.0 / m);
  Rng rng(8600 + static_cast<std::uint64_t>(alpha * 100) +
          static_cast<std::uint64_t>(feedback_delay * 10));
  mobiweb::RunningStats stats;
  for (int d = 0; d < docs; ++d) {
    sim::TransferConfig cfg;
    cfg.m = m;
    cfg.alpha = alpha;
    cfg.request_delay = feedback_delay;
    cfg.max_rounds = 1000;
    sim::TransferResult r;
    switch (scheme) {
      case Scheme::kIda:
        cfg.n = 60;  // gamma = 1.5
        cfg.caching = true;
        r = sim::simulate_transfer(content, cfg, rng);
        break;
      case Scheme::kArq:
        cfg.n = m;
        r = sim::simulate_arq_transfer(content, cfg, rng);
        break;
      case Scheme::kReload:
        cfg.n = m;
        cfg.caching = false;
        cfg.max_rounds = 200;
        r = sim::simulate_transfer(content, cfg, rng);
        break;
    }
    stats.add(r.time);
  }
  return stats.mean();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — IDA redundancy vs selective-repeat ARQ vs full reload",
      "Mean response time (s) for a relevant 40-packet document vs the\n"
      "feedback (NACK) round-trip cost. ARQ wins with free feedback; IDA\n"
      "needs none within a round and overtakes as feedback gets expensive.\n"
      "Full reload collapses at moderate alpha (conventional behaviour).");

  const int docs = bench::fast_mode() ? 2000 : 20000;

  for (const double alpha : {0.1, 0.3}) {
    TextTable table({"feedback delay (s)", "IDA gamma=1.5 + cache",
                     "selective-repeat ARQ", "full reload"});
    for (const double delay : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
      table.add_row({TextTable::fmt(delay, 2),
                     TextTable::fmt(mean_time(Scheme::kIda, alpha, delay, docs), 3),
                     TextTable::fmt(mean_time(Scheme::kArq, alpha, delay, docs), 3),
                     TextTable::fmt(mean_time(Scheme::kReload, alpha, delay, docs), 3)});
    }
    bench::print_table("alpha = " + TextTable::fmt(alpha, 1), table);
  }
  return 0;
}
