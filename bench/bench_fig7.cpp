// Figure 7 (Experiment #4): impact of the skew factor delta on LOD-based
// transmission. Same setting as Experiment #3 with alpha fixed at 0.1 and
// delta in {2, 3, 4, 5}.
//
// Expected shape (paper §5.4): the larger delta, the larger the peak
// improvement (more non-uniform unit contents mean ranking pays off more);
// the peak sits near F = 0.1-0.2; with small delta the ranked order
// approaches sequential transmission and the improvement shrinks.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
namespace doc = mobiweb::doc;
using mobiweb::TextTable;

namespace {

double mean_response(double skew, double f, doc::Lod lod) {
  sim::ExperimentParams p;
  p.alpha = 0.1;
  p.caching = true;
  p.irrelevant_fraction = 1.0;
  p.relevance_threshold = f;
  p.lod = lod;
  p.document.skew = skew;
  p.repetitions = bench::repetitions();
  p.documents_per_session = bench::documents_per_session();
  p.seed = 5000 + static_cast<std::uint64_t>(f * 100) +
           static_cast<std::uint64_t>(skew * 10);
  return sim::run_browsing_experiment(p).response_time.mean;
}

void panel(double skew) {
  TextTable table({"F", "document", "section", "subsection", "paragraph"});
  for (double f = 0.1; f <= 1.001; f += 0.1) {
    const double base = mean_response(skew, f, doc::Lod::kDocument);
    std::vector<std::string> row = {TextTable::fmt(f, 1)};
    for (const auto lod : {doc::Lod::kDocument, doc::Lod::kSection,
                           doc::Lod::kSubsection, doc::Lod::kParagraph}) {
      row.push_back(TextTable::fmt(base / mean_response(skew, f, lod), 3));
    }
    table.add_row(std::move(row));
  }
  std::string caption = "Figure 7, Caching (delta = ";
  caption += TextTable::fmt(skew, 0) + ", alpha = 0.1) — improvement over document LOD";
  bench::print_table(caption, table);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7 — impact of the skew factor delta (Experiment #4)",
      "Improvement = RT(document LOD) / RT(LOD) with I = 1, alpha = 0.1.");
  panel(2.0);
  panel(3.0);
  panel(4.0);
  panel(5.0);
  return 0;
}
