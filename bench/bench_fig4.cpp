// Figure 4 (Experiment #1): mean response time vs redundancy ratio gamma,
// for Caching vs NoCaching and I = 0 vs I = 0.5, at alpha = 0.1..0.5.
// All documents are transmitted at the document LOD (conventional order).
//
// Expected shape (paper §5.1): caching dominates, dramatically so at high
// alpha; gamma = 1.5 suffices for small/moderate alpha or whenever caching is
// on; NoCaching at alpha > 0.3 needs gamma ~ 2. NoCaching cells at low gamma
// and high alpha explode (the paper's curves run off its 20 s axis); those
// transfers hit the max_rounds cap and are marked with '*'.
// --json[=PATH] runs a reduced gamma x alpha grid for Caching and NoCaching
// and emits mean response times plus per-condition aggregated round/session
// histograms (one metrics registry per condition).
#include <string>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"

namespace bench = mobiweb::bench;
namespace obs = mobiweb::obs;
namespace sim = mobiweb::sim;
using mobiweb::TextTable;

namespace {

void panel(const char* name, bool caching, double irrelevant_fraction) {
  TextTable table({"gamma", "alpha=0.1", "alpha=0.2", "alpha=0.3", "alpha=0.4",
                   "alpha=0.5"});
  for (double gamma = 1.1; gamma <= 2.501; gamma += 0.1) {
    std::vector<std::string> row = {TextTable::fmt(gamma, 1)};
    for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      sim::ExperimentParams p;
      p.gamma = gamma;
      p.alpha = alpha;
      p.caching = caching;
      p.irrelevant_fraction = irrelevant_fraction;
      p.relevance_threshold = 0.5;
      p.lod = mobiweb::doc::Lod::kDocument;
      p.repetitions = bench::repetitions();
      p.documents_per_session = bench::documents_per_session();
      p.seed = 1000 + static_cast<std::uint64_t>(gamma * 10);
      const auto r = sim::run_browsing_experiment(p);
      std::string cell = TextTable::fmt(r.response_time.mean, 2);
      if (r.gave_up_fraction > 0.0) cell += "*";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(name, table);
}

int run_json_mode(const std::string& path) {
  std::string json = "{\n  \"schema\": \"mobiweb-bench/1\",\n  \"bench\": \"fig4\",\n  \"conditions\": [\n";
  bool first = true;
  for (const bool caching : {false, true}) {
    for (const double gamma : {1.2, 1.5, 2.0}) {
      for (const double alpha : {0.1, 0.3, 0.5}) {
        sim::ExperimentParams p;
        p.gamma = gamma;
        p.alpha = alpha;
        p.caching = caching;
        p.irrelevant_fraction = 0.5;
        p.relevance_threshold = 0.5;
        p.lod = mobiweb::doc::Lod::kDocument;
        p.repetitions = bench::fast_mode() ? 2 : 5;
        p.documents_per_session = bench::fast_mode() ? 20 : 50;
        p.seed = 1000 + static_cast<std::uint64_t>(gamma * 10);
        obs::MetricsRegistry registry;
        p.metrics = &registry;
        const auto r = sim::run_browsing_experiment(p);
        if (!first) json += ",\n";
        json += "    {\"caching\": " + std::string(caching ? "true" : "false") +
                ", \"gamma\": " + TextTable::fmt(gamma, 1) +
                ", \"alpha\": " + TextTable::fmt(alpha, 1) +
                ",\n     \"mean_response_time_s\": " +
                std::to_string(r.response_time.mean) +
                ", \"stall_fraction\": " + std::to_string(r.stall_fraction) +
                ", \"gave_up_fraction\": " + std::to_string(r.gave_up_fraction) +
                ",\n     \"metrics\": " + registry.to_json() + "}";
        first = false;
      }
    }
  }
  json += "\n  ]\n}\n";
  return bench::emit_json(json, path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = bench::json_request(argc, argv)) {
    return run_json_mode(*path);
  }
  bench::print_header(
      "Figure 4 — Caching vs NoCaching across redundancy ratios (Experiment #1)",
      "Mean response time (s) per document; '*' = some transfers hit the\n"
      "retransmission cap (off the paper's 20 s axis).");
  panel("Figure 4a: NoCaching, I = 0 (all documents relevant)", false, 0.0);
  panel("Figure 4b: Caching,   I = 0 (all documents relevant)", true, 0.0);
  panel("Figure 4c: NoCaching, I = 0.5 (F = 0.5)", false, 0.5);
  panel("Figure 4d: Caching,   I = 0.5 (F = 0.5)", true, 0.5);
  return 0;
}
