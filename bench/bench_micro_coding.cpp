// Micro-benchmarks: GF(2^8) kernels, IDA encode/decode, CRC, packet framing.
// These quantify the client/server CPU cost of the fault-tolerant encoding —
// relevant because the paper targets battery-constrained mobile devices.
//
// Two modes:
//   * default — google-benchmark suite (per-kernel BM_GfMulAddRow/<name>
//     entries report bytes_per_second for each coding kernel);
//   * --json[=PATH] — self-timed sweep printing machine-readable JSON
//     (kernel name -> MB/s, plus IDA encode/decode throughput) to stdout or
//     PATH, for the bench trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gf256/gf256.hpp"
#include "gf256/matrix.hpp"
#include "ida/ida.hpp"
#include "packet/packet.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"

namespace gf = mobiweb::gf;
namespace ida = mobiweb::ida;
namespace packet = mobiweb::packet;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::Rng;

namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

std::vector<gf::Kernel> benchable_kernels() {
  std::vector<gf::Kernel> ks = {gf::Kernel::kScalar, gf::Kernel::kMulTable,
                                gf::Kernel::kSplitNibble};
  if (gf::kernel_available(gf::Kernel::kSimd)) ks.push_back(gf::Kernel::kSimd);
  return ks;
}

void BM_GfMulAddRow(benchmark::State& state, gf::Kernel kernel) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Bytes in = random_bytes(n, 1);
  Bytes out = random_bytes(n, 2);
  for (auto _ : state) {
    gf::mul_add_row(out.data(), in.data(), 0x57, n, kernel);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_MatrixInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gf::Matrix v = gf::vandermonde(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.inverse());
  }
}
BENCHMARK(BM_MatrixInverse)->Arg(10)->Arg(40)->Arg(100);

void BM_IdaEncode(benchmark::State& state) {
  // The paper's document shape: 10240 bytes, 40 raw -> 60 cooked.
  const Bytes payload = random_bytes(10240, 3);
  const ida::Encoder enc(40, 60);
  (void)ida::systematic_generator(60, 40);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_payload(ByteSpan(payload), 256));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 10240);
}
BENCHMARK(BM_IdaEncode);

void BM_IdaEncodeParallel(benchmark::State& state) {
  // Same shape, forced through the thread-pool sharded path.
  const Bytes payload = random_bytes(10240, 3);
  const ida::Encoder enc(40, 60);
  (void)ida::systematic_generator(60, 40);
  const std::size_t prev = ida::set_parallel_threshold(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_payload(ByteSpan(payload), 256));
  }
  ida::set_parallel_threshold(prev);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 10240);
}
BENCHMARK(BM_IdaEncodeParallel);

void BM_IdaDecodeWorstCase(benchmark::State& state) {
  // Decode from redundancy-only packets (full matrix inversion + multiply).
  const Bytes payload = random_bytes(10240, 4);
  const ida::Encoder enc(40, 80);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  std::vector<std::pair<std::size_t, Bytes>> redundancy;
  for (std::size_t i = 40; i < 80; ++i) redundancy.emplace_back(i, cooked[i]);
  const ida::Decoder dec(40, 80);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode_payload(redundancy, payload.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 10240);
}
BENCHMARK(BM_IdaDecodeWorstCase);

void BM_IdaDecodeMostlyClear(benchmark::State& state) {
  // The common case: 36 of 40 clear packets arrived, 4 from redundancy.
  const Bytes payload = random_bytes(10240, 5);
  const ida::Encoder enc(40, 60);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  std::vector<std::pair<std::size_t, Bytes>> held;
  for (std::size_t i = 0; i < 36; ++i) held.emplace_back(i, cooked[i]);
  for (std::size_t i = 40; i < 44; ++i) held.emplace_back(i, cooked[i]);
  const ida::Decoder dec(40, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode_payload(held, payload.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 10240);
}
BENCHMARK(BM_IdaDecodeMostlyClear);

void BM_Crc32(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::crc32(ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(260)->Arg(10240);

void BM_PacketEncodeDecode(benchmark::State& state) {
  packet::Packet p;
  p.doc_id = 1;
  p.seq = 7;
  p.total = 60;
  p.payload = random_bytes(256, 7);
  for (auto _ : state) {
    const Bytes frame = packet::encode(p);
    benchmark::DoNotOptimize(packet::decode(ByteSpan(frame)));
  }
}
BENCHMARK(BM_PacketEncodeDecode);

void register_kernel_benchmarks() {
  for (const gf::Kernel k : benchable_kernels()) {
    const std::string name = std::string("BM_GfMulAddRow/") + gf::kernel_name(k);
    benchmark::RegisterBenchmark(name.c_str(), BM_GfMulAddRow, k)
        ->Arg(256)
        ->Arg(4096)
        ->Arg(65536);
  }
}

// ---- self-timed JSON mode ----

// MB/s (1e6 bytes) of mul_add_row over `row_bytes` rows with kernel `k`,
// measured over ~0.25 s of wall time.
double measure_mul_add_mbps(gf::Kernel k, std::size_t row_bytes) {
  const Bytes in = random_bytes(row_bytes, 11);
  Bytes out = random_bytes(row_bytes, 12);
  gf::mul_add_row(out.data(), in.data(), 0x57, row_bytes, k);  // warm tables
  using Clock = std::chrono::steady_clock;
  const auto budget = std::chrono::milliseconds(250);
  const auto start = Clock::now();
  std::size_t bytes = 0;
  do {
    for (int rep = 0; rep < 64; ++rep) {
      gf::mul_add_row(out.data(), in.data(), 0x57, row_bytes, k);
      benchmark::DoNotOptimize(out.data());
    }
    bytes += 64 * row_bytes;
  } while (Clock::now() - start < budget);
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(bytes) / 1e6 / secs;
}

template <typename Fn>
double measure_payload_mbps(std::size_t payload_bytes, Fn&& op) {
  using Clock = std::chrono::steady_clock;
  const auto budget = std::chrono::milliseconds(250);
  const auto start = Clock::now();
  std::size_t bytes = 0;
  do {
    op();
    bytes += payload_bytes;
  } while (Clock::now() - start < budget);
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(bytes) / 1e6 / secs;
}

int emit_json(const std::string& path) {
  const std::size_t row_bytes = 4096;
  const Bytes payload = random_bytes(10240, 13);
  const ida::Encoder enc(40, 60);
  const ida::Decoder dec(40, 60);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  std::vector<std::pair<std::size_t, Bytes>> redundancy;
  for (std::size_t i = 20; i < 60; ++i) redundancy.emplace_back(i, cooked[i]);

  mobiweb::bench::JsonReport report("micro_coding");
  report.meta("row_bytes", static_cast<double>(row_bytes));
  report.meta("payload_bytes", static_cast<double>(payload.size()));
  report.meta("active_kernel", std::string(gf::kernel_name(
                                   gf::resolve_kernel(gf::active_kernel()))));
  for (const gf::Kernel k : benchable_kernels()) {
    report.metric(std::string("mul_add_row.") + gf::kernel_name(k) + ".mbps",
                  measure_mul_add_mbps(k, row_bytes));
  }
  report.metric("ida_encode_mbps", measure_payload_mbps(payload.size(), [&] {
                  benchmark::DoNotOptimize(
                      enc.encode_payload(ByteSpan(payload), 256));
                }));
  report.metric("ida_decode_mbps", measure_payload_mbps(payload.size(), [&] {
                  benchmark::DoNotOptimize(
                      dec.decode_payload(redundancy, payload.size()));
                }));
  return mobiweb::bench::emit_json(report.str(), path);
}

}  // namespace

int main(int argc, char** argv) {
  if (const auto path = mobiweb::bench::json_request(argc, argv)) {
    return emit_json(*path);
  }
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
