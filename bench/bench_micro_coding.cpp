// Micro-benchmarks: GF(2^8) kernels, IDA encode/decode, CRC, packet framing.
// These quantify the client/server CPU cost of the fault-tolerant encoding —
// relevant because the paper targets battery-constrained mobile devices.
#include <benchmark/benchmark.h>

#include "gf256/gf256.hpp"
#include "gf256/matrix.hpp"
#include "ida/ida.hpp"
#include "packet/packet.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"

namespace gf = mobiweb::gf;
namespace ida = mobiweb::ida;
namespace packet = mobiweb::packet;
using mobiweb::Bytes;
using mobiweb::ByteSpan;
using mobiweb::Rng;

namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

void BM_GfMulAddRow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Bytes in = random_bytes(n, 1);
  Bytes out = random_bytes(n, 2);
  for (auto _ : state) {
    gf::mul_add_row(out.data(), in.data(), 0x57, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GfMulAddRow)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MatrixInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gf::Matrix v = gf::vandermonde(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.inverse());
  }
}
BENCHMARK(BM_MatrixInverse)->Arg(10)->Arg(40)->Arg(100);

void BM_IdaEncode(benchmark::State& state) {
  // The paper's document shape: 10240 bytes, 40 raw -> 60 cooked.
  const Bytes payload = random_bytes(10240, 3);
  const ida::Encoder enc(40, 60);
  (void)ida::systematic_generator(60, 40);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_payload(ByteSpan(payload), 256));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 10240);
}
BENCHMARK(BM_IdaEncode);

void BM_IdaDecodeWorstCase(benchmark::State& state) {
  // Decode from redundancy-only packets (full matrix inversion + multiply).
  const Bytes payload = random_bytes(10240, 4);
  const ida::Encoder enc(40, 80);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  std::vector<std::pair<std::size_t, Bytes>> redundancy;
  for (std::size_t i = 40; i < 80; ++i) redundancy.emplace_back(i, cooked[i]);
  const ida::Decoder dec(40, 80);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode_payload(redundancy, payload.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 10240);
}
BENCHMARK(BM_IdaDecodeWorstCase);

void BM_IdaDecodeMostlyClear(benchmark::State& state) {
  // The common case: 36 of 40 clear packets arrived, 4 from redundancy.
  const Bytes payload = random_bytes(10240, 5);
  const ida::Encoder enc(40, 60);
  const auto cooked = enc.encode_payload(ByteSpan(payload), 256);
  std::vector<std::pair<std::size_t, Bytes>> held;
  for (std::size_t i = 0; i < 36; ++i) held.emplace_back(i, cooked[i]);
  for (std::size_t i = 40; i < 44; ++i) held.emplace_back(i, cooked[i]);
  const ida::Decoder dec(40, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode_payload(held, payload.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 10240);
}
BENCHMARK(BM_IdaDecodeMostlyClear);

void BM_Crc32(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mobiweb::crc32(ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(260)->Arg(10240);

void BM_PacketEncodeDecode(benchmark::State& state) {
  packet::Packet p;
  p.doc_id = 1;
  p.seq = 7;
  p.total = 60;
  p.payload = random_bytes(256, 7);
  for (auto _ : state) {
    const Bytes frame = packet::encode(p);
    benchmark::DoNotOptimize(packet::decode(ByteSpan(frame)));
  }
}
BENCHMARK(BM_PacketEncodeDecode);

}  // namespace
