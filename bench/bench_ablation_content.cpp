// Ablation: alternative information-content definitions (§6 future work) —
// how fast does each transmission ordering deliver the document's "real"
// content?
//
// Reference content = the paper's IC (keyword-weighted). Each ordering ranks
// the paragraphs by its own score (document order / unit length / IC /
// TF-IDF against a small corpus) and we measure the clean-channel bytes
// needed before the accumulated *reference* content crosses each threshold.
// A good ordering fronts the keyword-dense units with few bytes.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data_paper.hpp"
#include "doc/content.hpp"
#include "doc/content_alt.hpp"
#include "doc/linear.hpp"
#include "xml/parser.hpp"

namespace bench = mobiweb::bench;
namespace doc = mobiweb::doc;
using mobiweb::TextTable;

namespace {

struct RankedUnit {
  const doc::OrgUnit* unit;
  double order_score;   // ranking key (higher first)
  double reference_ic;  // the paper's IC (what we account)
  std::size_t bytes;
};

// Bytes needed until cumulative reference IC >= threshold under the ordering.
std::size_t bytes_to_threshold(std::vector<RankedUnit> units, bool ranked,
                               double threshold) {
  if (ranked) {
    std::stable_sort(units.begin(), units.end(),
                     [](const RankedUnit& a, const RankedUnit& b) {
                       return a.order_score > b.order_score;
                     });
  }
  double content = 0.0;
  std::size_t bytes = 0;
  for (const auto& u : units) {
    if (content >= threshold) break;
    // Proportional accrual within the unit.
    const double missing = threshold - content;
    if (u.reference_ic > 0.0 && missing < u.reference_ic) {
      bytes += static_cast<std::size_t>(
          static_cast<double>(u.bytes) * missing / u.reference_ic);
      return bytes;
    }
    content += u.reference_ic;
    bytes += u.bytes;
  }
  return bytes;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — content definitions: document order / length / IC / TF-IDF",
      "Clean channel; bytes transmitted before the accumulated reference\n"
      "(paper-IC) content reaches F, at paragraph LOD on the bundled paper.\n"
      "Lower is better; 'document order' is the conventional baseline.");

  doc::ScGenerator gen;
  const auto sc = gen.generate(mobiweb::xml::parse(bench::kPaperXml));

  // Small corpus for idf: the paper plus three unrelated documents.
  doc::CorpusStats corpus;
  corpus.add_document(sc);
  for (const char* other :
       {"<paper><para>recipes for baking bread and slow cooking stews with "
        "seasonal vegetables in a home kitchen</para></paper>",
        "<paper><para>league results and transfer rumours from the football "
        "season with match highlights</para></paper>",
        "<paper><para>gardening tips for growing tomatoes and pruning roses "
        "through the summer months</para></paper>"}) {
    corpus.add_document(gen.generate(mobiweb::xml::parse(other)));
  }
  const doc::TfIdfScorer tfidf(sc, corpus);

  const auto frontier = doc::frontier_at(sc.root(), doc::Lod::kParagraph);
  std::vector<RankedUnit> base;
  for (const auto* u : frontier) {
    RankedUnit r;
    r.unit = u;
    r.reference_ic = u->info_content;
    r.bytes = doc::render_unit_text(*u).size();
    r.order_score = 0.0;
    base.push_back(r);
  }

  TextTable table({"F", "document order", "length", "IC (paper)", "TF-IDF"});
  for (const double f : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    auto by_length = base;
    for (auto& r : by_length) r.order_score = doc::length_content(sc, *r.unit);
    auto by_ic = base;
    for (auto& r : by_ic) r.order_score = r.unit->info_content;
    auto by_tfidf = base;
    for (auto& r : by_tfidf) r.order_score = tfidf.content(*r.unit);

    table.add_row(
        {TextTable::fmt(f, 1),
         std::to_string(bytes_to_threshold(base, false, f)),
         std::to_string(bytes_to_threshold(by_length, true, f)),
         std::to_string(bytes_to_threshold(by_ic, true, f)),
         std::to_string(bytes_to_threshold(by_tfidf, true, f))});
  }
  bench::print_table("Bytes to reach reference content F", table);
  return 0;
}
