// Ablation: profile-driven prefetching over idle bandwidth (the paper's
// future-work feature) — user-perceived latency with and without it.
//
// Workload: a corpus of topic-tagged documents; the user repeatedly (a)
// thinks for a few seconds (idle airtime), then (b) requests a document,
// drawn 80% from their favourite topic. Relevance feedback trains the
// UserProfile online; the Prefetcher spends think-time pulling the
// highest-scored uncached documents.
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mobiweb.hpp"
#include "core/prefetch.hpp"
#include "doc/profile.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bench = mobiweb::bench;
namespace doc = mobiweb::doc;
using mobiweb::Rng;
using mobiweb::TextTable;

namespace {

// A corpus with two topics; topical vocabulary makes the profile separable.
mobiweb::Server make_corpus(int docs_per_topic) {
  mobiweb::Server server;
  const char* wireless_words[] = {"wireless", "bandwidth", "channel", "handoff",
                                  "fading", "cellular", "packet", "antenna"};
  const char* cooking_words[] = {"recipe", "baking", "stew", "flavour",
                                 "kitchen", "roast", "simmer", "spice"};
  Rng rng(777);
  for (int topic = 0; topic < 2; ++topic) {
    const auto& words = topic == 0 ? wireless_words : cooking_words;
    for (int d = 0; d < docs_per_topic; ++d) {
      std::string xml = "<paper>";
      for (int p = 0; p < 6; ++p) {
        xml += "<para>";
        for (int w = 0; w < 30; ++w) {
          xml += std::string(words[rng.next_below(8)]) + " ";
          xml += "filler" + std::to_string(rng.next_below(200)) + " ";
        }
        xml += "</para>";
      }
      xml += "</paper>";
      server.publish_xml((topic == 0 ? "doc://wireless-" : "doc://cooking-") +
                             std::to_string(d),
                         xml);
    }
  }
  return server;
}

struct Outcome {
  double mean_latency = 0.0;
  double hit_rate = 0.0;
};

Outcome run_session(bool prefetch_enabled, double think_time, int requests,
                    std::uint64_t seed) {
  const mobiweb::Server server = make_corpus(12);
  mobiweb::BrowseConfig cfg;
  cfg.alpha = 0.2;
  cfg.fixed_gamma = 1.5;
  cfg.seed = seed;
  mobiweb::BrowseSession session(server, cfg);
  mobiweb::DocumentCache cache;
  mobiweb::Prefetcher prefetcher(server, session, cache, {.min_score = 0.01});
  doc::UserProfile profile(0.3);

  Rng rng(seed * 3 + 1);
  mobiweb::RunningStats latency;
  int hits = 0;
  std::set<std::string> visited;

  for (int r = 0; r < requests; ++r) {
    // Think time: idle airtime the prefetcher may exploit.
    if (prefetch_enabled && profile.feedback_count() > 0) {
      prefetcher.run_idle(profile, think_time, visited);
    }
    // The user asks for a document: 80% favourite topic (wireless).
    const bool wireless = rng.next_bernoulli(0.8);
    const std::string url = (wireless ? "doc://wireless-" : "doc://cooking-") +
                            std::to_string(rng.next_below(12));
    visited.insert(url);

    if (const auto cached = cache.get(url)) {
      latency.add(0.0);  // served locally, no airtime
      ++hits;
    } else {
      const double before = session.now();
      const auto result = session.fetch(url, {});
      latency.add(session.now() - before);
      (void)result;
    }
    // Relevance feedback: the user likes wireless documents.
    profile.observe(server.find(url)->document_terms(), wireless);
  }
  return {latency.mean(), static_cast<double>(hits) / requests};
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — profile-driven prefetching over idle bandwidth",
      "User requests 80% wireless / 20% cooking documents with think time\n"
      "between requests; the profile learns online from relevance feedback.\n"
      "Latency = airtime the user waits per request; hits are served from\n"
      "the prefetch cache instantly.");

  const int requests = 24;
  const int reps = bench::fast_mode() ? 3 : 10;

  TextTable table({"think time (s)", "policy", "mean latency (s)", "cache hit rate"});
  for (const double think : {2.0, 5.0, 10.0}) {
    for (const bool enabled : {false, true}) {
      mobiweb::RunningStats lat;
      mobiweb::RunningStats hit;
      for (int rep = 0; rep < reps; ++rep) {
        const auto o = run_session(enabled, think, requests,
                                   1000 + static_cast<std::uint64_t>(rep));
        lat.add(o.mean_latency);
        hit.add(o.hit_rate);
      }
      table.add_row({TextTable::fmt(think, 1),
                     enabled ? "prefetch" : "no prefetch",
                     TextTable::fmt(lat.mean(), 3), TextTable::fmt(hit.mean(), 3)});
    }
  }
  bench::print_table("Prefetching ablation", table);
  return 0;
}
