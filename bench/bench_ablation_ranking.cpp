// Ablation: transmission-order ranking measure — document order vs static IC
// vs QIC vs MQIC (the §3 alternatives) — measured on the real stack (XML ->
// SC -> linearize -> IDA -> lossy channel -> receiver).
//
// Scenario: the user searched for a topic; the fetched document is judged
// relevant once the received information content reaches F. A query-aware
// order should surface the query-relevant units sooner, cutting frames and
// time; MQIC should behave like QIC when the query matches well, while
// degrading gracefully toward IC when it matches weakly.
#include <string>

#include "bench_common.hpp"
#include "core/mobiweb.hpp"
#include "data_paper.hpp"
#include "util/stats.hpp"

namespace bench = mobiweb::bench;
namespace doc = mobiweb::doc;
using mobiweb::TextTable;

namespace {

struct Row {
  double frames = 0.0;
  double time = 0.0;
  double content = 0.0;
};

Row measure(doc::RankBy rank, const std::string& query, double f, double alpha,
            int trials) {
  mobiweb::Server server;
  server.publish_xml("doc://paper", bench::kPaperXml);
  Row acc;
  for (int t = 0; t < trials; ++t) {
    mobiweb::BrowseConfig cfg;
    cfg.alpha = alpha;
    cfg.seed = 7000 + static_cast<std::uint64_t>(t);
    mobiweb::BrowseSession session(server, cfg);
    mobiweb::FetchOptions opts;
    opts.lod = doc::Lod::kParagraph;
    opts.rank = rank;
    opts.query = query;
    opts.relevance_threshold = f;
    const auto r = session.fetch("doc://paper", opts);
    acc.frames += static_cast<double>(r.session.frames_sent);
    acc.time += r.session.response_time;
    acc.content += r.session.content_received;
  }
  acc.frames /= trials;
  acc.time /= trials;
  acc.content /= trials;
  return acc;
}

const char* rank_name(doc::RankBy r) {
  switch (r) {
    case doc::RankBy::kDocumentOrder: return "document order";
    case doc::RankBy::kIc: return "IC";
    case doc::RankBy::kQic: return "QIC";
    case doc::RankBy::kMqic: return "MQIC";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — transmission-order ranking: document order / IC / QIC / MQIC",
      "Real stack, paragraph LOD, alpha = 0.2, abort at F. Query-aware\n"
      "orders should reach F in fewer frames when the query targets specific\n"
      "sections. Note: under QIC/MQIC the client accrues *query-based*\n"
      "content, so F = fraction of the query-relevant mass.");

  const int trials = bench::fast_mode() ? 10 : 60;
  const double alpha = 0.2;

  for (const auto& [query, label] :
       {std::pair<std::string, std::string>{"redundancy cooked packets",
                                            "query: 'redundancy cooked packets'"},
        {"profile prefetching", "query: 'profile prefetching' (narrow match)"}}) {
    TextTable table({"ranking", "frames to F=0.3", "time (s)", "content@stop"});
    for (const auto rank : {doc::RankBy::kDocumentOrder, doc::RankBy::kIc,
                            doc::RankBy::kQic, doc::RankBy::kMqic}) {
      const auto r = measure(rank, query, 0.3, alpha, trials);
      table.add_row({rank_name(rank), TextTable::fmt(r.frames, 1),
                     TextTable::fmt(r.time, 3), TextTable::fmt(r.content, 3)});
    }
    bench::print_table(label, table);
  }
  return 0;
}
