// Figure 3: "Redundancy ratio versus failure" — gamma = N/M against the
// failure probability alpha, at S = 95% and 99%, for M = 10 / 50 / 100
// (the paper plots M = 50 and shows the M-variation band).
#include "analysis/negbinom.hpp"
#include "bench_common.hpp"

using mobiweb::TextTable;
namespace analysis = mobiweb::analysis;
namespace bench = mobiweb::bench;

int main() {
  bench::print_header(
      "Figure 3 — redundancy ratio gamma = N/M vs failure probability alpha",
      "Expected shape: gamma grows from ~1.2 at alpha=0.1 to ~2.3-3 at\n"
      "alpha=0.5; the M=10..100 band is narrow, so gamma can be treated as a\n"
      "function of alpha alone (the paper's practical guideline).");

  TextTable table({"alpha", "S=95% M=10", "S=95% M=50", "S=95% M=100",
                   "S=99% M=10", "S=99% M=50", "S=99% M=100"});
  for (double alpha = 0.05; alpha <= 0.501; alpha += 0.05) {
    std::vector<std::string> row = {TextTable::fmt(alpha, 2)};
    for (const double s : {0.95, 0.99}) {
      for (const int m : {10, 50, 100}) {
        row.push_back(TextTable::fmt(analysis::redundancy_ratio(m, alpha, s), 3));
      }
    }
    // Reorder: the loop above builds S-major, matching the header.
    table.add_row(std::move(row));
  }
  bench::print_table("Figure 3", table);

  std::printf(
      "\nPaper check: at alpha=0.1 the default gamma=1.5 comfortably exceeds\n"
      "the 95%% requirement (%.3f); at alpha=0.5 gamma must reach %.3f.\n",
      analysis::redundancy_ratio(50, 0.1, 0.95),
      analysis::redundancy_ratio(50, 0.5, 0.95));
  return 0;
}
