// Shared helpers for the reproduction harnesses.
//
// Every bench binary prints (a) a header naming the paper artifact it
// regenerates, (b) an aligned ASCII table, and (c) a CSV block for plotting.
// Set MOBIWEB_FAST=1 to cut repetitions (quick smoke runs); default settings
// match the paper (50 repetitions x 200 documents).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/table.hpp"

namespace mobiweb::bench {

inline bool fast_mode() {
  const char* v = std::getenv("MOBIWEB_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Paper-default repetition count, reduced under MOBIWEB_FAST.
inline int repetitions() { return fast_mode() ? 5 : 50; }
inline int documents_per_session() { return fast_mode() ? 50 : 200; }

inline void print_header(const std::string& artifact, const std::string& summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", summary.c_str());
  if (fast_mode()) {
    std::printf("[MOBIWEB_FAST: reduced repetitions; expect noisier numbers]\n");
  }
  std::printf("================================================================\n");
}

inline void print_table(const std::string& caption, const TextTable& table) {
  std::printf("\n-- %s --\n%s", caption.c_str(), table.render().c_str());
  std::printf("csv:\n%s", table.render_csv().c_str());
}

}  // namespace mobiweb::bench
