// Shared helpers for the reproduction harnesses.
//
// Every bench binary prints (a) a header naming the paper artifact it
// regenerates, (b) an aligned ASCII table, and (c) a CSV block for plotting.
// Set MOBIWEB_FAST=1 to cut repetitions (quick smoke runs); default settings
// match the paper (50 repetitions x 200 documents).
// Every bench also accepts --json[=PATH] (see json_request): a self-timed
// machine-readable run printing one JSON object to stdout (and PATH when
// given), following bench_micro_coding's convention.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace mobiweb::bench {

inline bool fast_mode() {
  const char* v = std::getenv("MOBIWEB_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Paper-default repetition count, reduced under MOBIWEB_FAST.
inline int repetitions() { return fast_mode() ? 5 : 50; }
inline int documents_per_session() { return fast_mode() ? 50 : 200; }

inline void print_header(const std::string& artifact, const std::string& summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", summary.c_str());
  if (fast_mode()) {
    std::printf("[MOBIWEB_FAST: reduced repetitions; expect noisier numbers]\n");
  }
  std::printf("================================================================\n");
}

inline void print_table(const std::string& caption, const TextTable& table) {
  std::printf("\n-- %s --\n%s", caption.c_str(), table.render().c_str());
  std::printf("csv:\n%s", table.render_csv().c_str());
}

// Scans argv for --NAME or --NAME=PATH (NAME without the dashes). Returns
// nullopt when absent, the (possibly empty) value when present. This is the
// one definition of the `--flag[=value]` convention every harness follows.
inline std::optional<std::string> flag_request(int argc, char** argv,
                                               const char* name) {
  const std::string bare = std::string("--") + name;
  const std::string prefix = bare + "=";
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return std::string();
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

// Scans argv for --json or --json=PATH. Returns nullopt when absent, the
// (possibly empty) output path when present.
inline std::optional<std::string> json_request(int argc, char** argv) {
  return flag_request(argc, argv, "json");
}

// Scans argv for --trace or --trace=PATH (Perfetto timeline output).
inline std::optional<std::string> trace_request(int argc, char** argv) {
  return flag_request(argc, argv, "trace");
}

// --NAME=VALUE parsed as a double; `fallback` when absent or unparsable.
inline double arg_double(int argc, char** argv, const char* name,
                         double fallback) {
  const auto v = flag_request(argc, argv, name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return end == v->c_str() ? fallback : parsed;
}

// --NAME=V1,V2,... parsed as doubles; `fallback` when absent or empty.
inline std::vector<double> arg_double_list(int argc, char** argv,
                                           const char* name,
                                           std::vector<double> fallback) {
  const auto v = flag_request(argc, argv, name);
  if (!v || v->empty()) return fallback;
  std::vector<double> out;
  const char* p = v->c_str();
  char* end = nullptr;
  while (*p != '\0') {
    const double parsed = std::strtod(p, &end);
    if (end == p) break;
    out.push_back(parsed);
    p = (*end == ',') ? end + 1 : end;
  }
  return out.empty() ? fallback : out;
}

// Prints `json` to stdout and, when `path` is non-empty, to `path` as well.
// Returns the process exit code.
inline int emit_json(const std::string& json, const std::string& path) {
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s\n", path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return 0;
}

// Machine-readable run in the "mobiweb-bench/1" schema — the stable contract
// scripts/bench_diff.py consumes:
//
//   {"schema": "mobiweb-bench/1", "bench": NAME,
//    "meta": {string/number descriptors of the run configuration},
//    "metrics": {flat key -> number},
//    ...optional extra sections (raw())...}
//
// Metric keys gate perf regressions, so their direction is encoded in the
// suffix: *_mbps / *_per_hour / *_per_s / *completed / *content are
// higher-is-better; *_s / *_ms / *_us / *_ns / *frames / *timeouts /
// *attempts / *gave_up are lower-is-better; anything else is informational.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, "\"" + obs::json_escape(value) + "\"");
  }
  void meta(const std::string& key, double value) {
    meta_.emplace_back(key, number(value));
  }
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, number(value));
  }
  // Appends a pre-rendered JSON value as an extra top-level section (e.g. a
  // per-cell array or captured session traces). Caller owns its validity.
  void raw(const std::string& key, std::string json_value) {
    raw_.emplace_back(key, std::move(json_value));
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{\n  \"schema\": \"mobiweb-bench/1\",\n  \"bench\": ";
    obs::append_json_string(out, bench_);
    out += ",\n  \"meta\": {";
    append_members(out, meta_);
    out += "},\n  \"metrics\": {";
    append_members(out, metrics_);
    out += "}";
    for (const auto& [key, value] : raw_) {
      out += ",\n  ";
      obs::append_json_string(out, key);
      out += ": " + value;
    }
    out += "\n}\n";
    return out;
  }

 private:
  static std::string number(double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
  }
  static void append_members(
      std::string& out,
      const std::vector<std::pair<std::string, std::string>>& members) {
    bool first = true;
    for (const auto& [key, value] : members) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      obs::append_json_string(out, key);
      out += ": " + value;
    }
    if (!first) out += "\n  ";
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<std::pair<std::string, std::string>> raw_;
};

// Compiler barrier for self-timed loops in harnesses that do not link
// google-benchmark.
template <typename T>
inline void keep_alive(T const& value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Runs `op` repeatedly for ~budget_s of wall time and returns ops/second.
template <typename Fn>
inline double measure_ops_per_s(Fn&& op, double budget_s = 0.25) {
  using Clock = std::chrono::steady_clock;
  const auto budget = std::chrono::duration<double>(budget_s);
  const auto start = Clock::now();
  long ops = 0;
  do {
    op();
    ++ops;
  } while (Clock::now() - start < budget);
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(ops) / secs;
}

}  // namespace mobiweb::bench
