// Shared helpers for the reproduction harnesses.
//
// Every bench binary prints (a) a header naming the paper artifact it
// regenerates, (b) an aligned ASCII table, and (c) a CSV block for plotting.
// Set MOBIWEB_FAST=1 to cut repetitions (quick smoke runs); default settings
// match the paper (50 repetitions x 200 documents).
// Every bench also accepts --json[=PATH] (see json_request): a self-timed
// machine-readable run printing one JSON object to stdout (and PATH when
// given), following bench_micro_coding's convention.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "util/table.hpp"

namespace mobiweb::bench {

inline bool fast_mode() {
  const char* v = std::getenv("MOBIWEB_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Paper-default repetition count, reduced under MOBIWEB_FAST.
inline int repetitions() { return fast_mode() ? 5 : 50; }
inline int documents_per_session() { return fast_mode() ? 50 : 200; }

inline void print_header(const std::string& artifact, const std::string& summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", summary.c_str());
  if (fast_mode()) {
    std::printf("[MOBIWEB_FAST: reduced repetitions; expect noisier numbers]\n");
  }
  std::printf("================================================================\n");
}

inline void print_table(const std::string& caption, const TextTable& table) {
  std::printf("\n-- %s --\n%s", caption.c_str(), table.render().c_str());
  std::printf("csv:\n%s", table.render_csv().c_str());
}

// Scans argv for --json or --json=PATH. Returns nullopt when absent, the
// (possibly empty) output path when present.
inline std::optional<std::string> json_request(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return std::string();
    if (std::strncmp(argv[i], "--json=", 7) == 0) return std::string(argv[i] + 7);
  }
  return std::nullopt;
}

// Prints `json` to stdout and, when `path` is non-empty, to `path` as well.
// Returns the process exit code.
inline int emit_json(const std::string& json, const std::string& path) {
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s\n", path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return 0;
}

}  // namespace mobiweb::bench
