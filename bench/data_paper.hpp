// An XML rendition of the paper's own draft — the document whose Structural
// Characteristic the paper's Table 1 lists. The section/subsection/paragraph
// skeleton mirrors the published structure (abstract = section 0; paragraphs
// outside any subsection fall into virtual subsections, giving the paper's
// 1.0 / 2.0 / 3.0 labels). The prose is condensed from the paper's text, so
// absolute IC values differ from Table 1 while the structure, the zero-QIC
// rows and the additive rule reproduce exactly.
#pragma once

namespace mobiweb::bench {

inline const char* kPaperXml = R"XML(<?xml version="1.0"?>
<research-paper>
  <title>On Supporting Weakly-Connected Browsing in a Mobile Web Environment</title>
  <abstract>
    <para>A mobile environment is weakly-connected, characterized by low
    communication bandwidth and poor connectivity. Conventional paradigm for
    surfing mobile web documents is ineffective since portions of a document
    could be corrupted during transmission and it is expensive to retransmit
    the whole document. We have proposed a multi-resolution transmission
    paradigm which allows higher content-bearing portions of a web document to
    be transmitted, by partitioning it into multiple organizational units and
    associating an information content with each unit. In this paper we extend
    our previous work and propose a fault-tolerant multi-resolution
    transmission scheme which allows units of higher information content to be
    recovered from transmission error. The client can obtain an overall
    content of a web document and either terminate the transmission of the
    remaining portions or decide if the corrupted portions need to be
    retransmitted. We demonstrate its feasibility with a prototype and with
    simulation results.</para>
  </abstract>
  <section>
    <title>Introduction</title>
    <para>We focus on a mobile environment in which mobile clients navigate
    web documents via common browsers, termed a mobile web environment. A
    mobile environment is weakly-connected, characterized by its low
    communication bandwidth and poor connectivity. Traffic generated due to
    web accesses in a mobile setting should consume as little bandwidth as
    possible. Conventional approaches to web navigation suffer from serious
    limitations.</para>
    <para>Conventional approaches to web navigation usually involve searching
    of web documents via some search engines, followed by human exploration of
    each document for relevance. Very often, most documents identified by a
    search engine are irrelevant to a user, thus wasting the precious
    bandwidth and the limited energy of a mobile client by transferring
    them.</para>
    <para>We propose a multi-resolution transmission paradigm which allows
    higher content-bearing portions of a web document to be transmitted to a
    mobile client earlier. A document is partitioned into multiple
    organizational units at various levels of detail according to its XML
    structure. A notion of information content is associated with each
    organizational unit, indicating the amount of information captured by the
    unit. A mobile client is able to explore the higher content-bearing
    portions of a web document earlier and to determine if the document is of
    any interest.</para>
    <para>One limitation of the multi-resolution transmission paradigm is its
    lack of resilience to faulty transmission. An organizational unit could
    get corrupted while being transmitted via a faulty wireless channel. We
    extend our approach with a fault-tolerant transmission capability so that
    a mobile client could recover the corrupted units sent over the unreliable
    network, known as fault-tolerant multi-resolution transmission.</para>
  </section>
  <section>
    <title>Related Work</title>
    <para>The explosion of information available on the Internet and the
    user-friendliness of web browsers have dramatically changed the way
    information is accessed. There have been numerous works attempting to
    increase the accuracy of information searching on the web. A common
    technique is to build an index over a collection of documents found by a
    web search process, which typically searches exhaustively.</para>
    <para>A probably better approach is to establish a user profile, capturing
    individual users' interests. The profile is used to filter out irrelevant
    information identified by a search engine. Rather than providing a user
    with a set of selected documents, recommender systems assist a user in his
    or her browsing behavior, interactively offering advice about which
    subsequent hyperlinks would likely contain the most relevant
    information.</para>
    <para>Recent advances in wireless communication and portable computers
    have enabled users to access web information along the road. Since
    wireless channels have limited bandwidth and mobile clients are
    constrained by limited battery life, one must consider efficient use of
    bandwidth and power carefully. To reduce bandwidth utilization, techniques
    for caching of data items from the server in a client's local storage have
    been investigated. Prefetching, however, demands higher bandwidth
    requirement and is thus not as feasible in a mobile environment with an
    already limited bandwidth.</para>
  </section>
  <section>
    <title>Multi-Resolution Transmission</title>
    <para>The structural organization of a document could be modeled by a
    tree-like indexing structure, called a structural characteristic. A notion
    of information content is defined as an indicator for the amount of
    information captured within an organizational unit, allowing a web
    document to be browsed at different levels of detail. We defined several
    levels: document, section, subsection, subsubsection, and paragraph,
    providing different degrees of detail with which a user can navigate a
    document.</para>
    <para>Our definition of level of detail is an abstraction to the actual
    formatting tags. It has a straightforward implementation in the context of
    XML, which allows the explicit definition of document structures. We are
    working on a mapping between HTML and XML documents which allows our
    approach to work on HTML documents as well.</para>
    <para>The set of keywords in a document will be used to determine the
    information content of an organizational unit. A weight is associated with
    each keyword which indicates its relative importance in a document. We use
    a logarithmic function of keyword occurrences to define this weight,
    normalized by the infinity norm of the occurrence vector. This allows the
    weight of each keyword to be determined without human intervention.</para>
    <subsection>
      <title>Information Content</title>
      <para>The information content of an organizational unit is defined to be
      the weighted sum of the keywords in the unit, normalized with respect to
      that of the document. Under this definition, the additive rule for
      information contents of sub-units will hold and the total information
      content for the document adds up to unity.</para>
    </subsection>
    <subsection>
      <title>Query-Based Information Content</title>
      <para>The notion of information content is based on a static analysis of
      a document. In practice, the set of documents that will be transmitted
      to and browsed by a user is the result of a searching process via some
      search engines. We extend the definition of information content in
      response to a search query and name the revised notion query-based
      information content. While information content of an organizational unit
      is static, its query-based counterpart is dynamic, changing according to
      the definition of an initiated keyword-based query.</para>
      <para>Sometimes, a user might want to emphasize a particular keyword by
      repeating it in order to give it a higher weight during a search process
      so as to bias the searching procedure towards certain words. We take the
      weight of each querying word into account, so as to be symmetrical to
      the processing of the document.</para>
    </subsection>
    <subsection>
      <title>Structural Characteristic Generation</title>
      <para>To generate the structural characteristic for a document, the
      document is pre-processed and a keyword-based logical index is
      established for each organizational unit. It can be structured as five
      modules: document recognizer, lemmatizer, word filter, keyword
      extractor, and structural characteristic generator, operating in a
      pipelined fashion. The lemmatizer converts document words into their
      lemmatized form. The word filter eliminates non-meaning-bearing words,
      usually referred to as stop words.</para>
    </subsection>
    <subsection>
      <title>Prototype</title>
      <para>We have implemented a prototype for multi-resolution transmission.
      The client renders each organizational unit incrementally at the proper
      position in the browsing window when the unit is received.</para>
    </subsection>
  </section>
  <section>
    <title>Fault-Tolerant Transmission</title>
    <para>The Internet is quite unstable in terms of connectivity. Occasional
    disconnection during transmission of web information is common and the
    browser will get stalled. This situation will get worse in the context of
    a mobile environment. We would like to enhance the reliability of
    delivering organizational units by introducing redundancy so that more
    important organizational units of a web document can be received
    successfully with a much higher probability.</para>
    <subsection>
      <title>Fault-Tolerating Encoding</title>
      <para>We assume that a document can be divided into raw packets, each of
      which is a fundamental unit of transmission over the wireless network.
      Data packets are received either intact or corrupted with detectable
      error. We propose to adopt the cyclic redundancy code for the detection
      of packet corruption, since it has a low computational cost and a high
      error coverage.</para>
      <para>Via a matrix multiplication procedure, the raw packets can be
      transformed into cooked packets such that if any sufficient subset of
      the cooked packets can be collected, the original file can be
      reconstructed via another matrix operation based on polynomial code. A
      slight modification is to adopt the Vandermonde polynomial in the
      transformation stage, followed by making the upper portion of the
      multiplying Vandermonde matrix into an identity matrix via elementary
      matrix transformation. This ensures that the first cooked packets will
      appear in exactly the same form as the raw packets, in clear text,
      saving recovering effort.</para>
      <para>Assuming that the probability a packet will be corrupted is given
      and that the corruption events of individual packets are independent,
      the number of packets to be collected before the original file can be
      reconstructed follows a negative binomial distribution. This inequality
      can be solved yielding an optimal number of cooked packets.</para>
    </subsection>
    <subsection>
      <title>Fault-Tolerating Multi-Resolution Transmission</title>
      <para>Using the encoding scheme, a document can be transmitted pretty
      reliably over a weakly-connected wireless channel in an order defined by
      query-based information content. The number of cooked packets required
      is pretty much of a linear relationship with the number of raw packets.
      This leads us to adopting a redundancy ratio as a guideline. To balance
      the amount of redundancy with successful transmission probability, the
      redundancy ratio could be defined as an adaptive function of the
      observed summarized failure probability, using perhaps a kind of
      exponentially weighted moving average measure.</para>
      <para>If a client is not able to receive enough intact cooked packets to
      reconstruct the document after all cooked packets are transmitted, the
      client is suffering from a stalled transmission. A better alternative is
      to cache the intact cooked packets received and use them to reconstruct
      the document when a retransmission of corrupted packets occurs. The
      local storage of the client could be utilized to store the partial
      document so as to increase the chance of getting the intact cooked
      packets required to reconstruct the original document.</para>
    </subsection>
  </section>
  <section>
    <title>Evaluation</title>
    <para>In order to quickly generate a portrait of an overall behavior and
    performance of our proposed scheme, we have developed a simulation model
    for the study. Our simulation study is mainly focused on the impact of
    transmission errors of a wireless channel on the performance of our
    fault-tolerance mechanism. Each simulated document is divided into raw
    packets which are transformed into cooked packets. The wireless channel
    has a typical bandwidth of nineteen point two kilobits per second.</para>
    <para>We study the performance difference between caching and no caching
    under various redundancy ratios. It is clear that the impact of the cache
    is very significant, especially when the error rate of the channel is
    high. We can briefly conclude that the use of cache in a highly unreliable
    wireless channel is very effective and must probably be implemented.</para>
    <para>Our third experiment studies the benefit brought about by
    multi-resolution browsing in discarding irrelevant documents early. We
    observe that a level of detail at the paragraph level leads to a better
    performance due to the earlier receipt of the most amount of information
    content. The higher the skewed factor, the more improvement the
    multi-resolution transmission approach can bring.</para>
  </section>
  <section>
    <title>Discussion and Future Work</title>
    <para>We have presented a mobile web system for transmitting and browsing
    web documents over a faulty wireless channel. Based on the notion of
    information content and its variants, it presents users with the main
    document content before presenting supplementary information. A redundant
    transmission scheme is also provided to increase the recoverability of a
    corrupted document due to unreliable wireless channels. We are also
    investigating intelligent prefetching based on information content and
    user profiling, utilizing the unused wireless bandwidth being left
    idle.</para>
  </section>
</research-paper>)XML";

}  // namespace mobiweb::bench
