// Table 1: "Information content of a draft paper" — IC, QIC and MQIC of every
// organizational unit of (an XML rendition of) this paper, for the query
// Q = {browsing, mobile, web}.
//
// Reproduction notes: the prose is a condensed rendition, so absolute values
// differ from the paper's Table 1; what reproduces is the structure (abstract
// = section 0, virtual subsections x.0), the additive rule, QIC = 0 for
// sections that never mention the querying words, and MQIC > 0 everywhere IC
// is positive.
#include "bench_common.hpp"
#include "data_paper.hpp"
#include "doc/content.hpp"
#include "xml/parser.hpp"

namespace doc = mobiweb::doc;
namespace bench = mobiweb::bench;
using mobiweb::TextTable;

int main() {
  bench::print_header(
      "Table 1 — IC / QIC / MQIC per organizational unit",
      "Query Q = {browsing, mobile, web}. Expect: additive rule per column,\n"
      "QIC = 0 rows for units without querying words, MQIC small-but-positive\n"
      "there, and the fault-tolerance section scoring high on IC but lower on\n"
      "QIC (it rarely says 'browsing mobile web').");

  const auto parsed = mobiweb::xml::parse(bench::kPaperXml);
  doc::ScGenerator generator;
  const auto sc = generator.generate(parsed);
  const auto query =
      doc::Query::from_text("browsing mobile web", generator.extractor());
  const doc::ContentScorer scorer(sc, query);

  TextTable table({"Sect./Subsect./Para.", "IC p", "QIC q^Q", "MQIC q~^Q"});
  for (const auto& row : sc.rows()) {
    if (row.depth == 0) continue;  // the paper's table lists non-root units
    table.add_row({row.label, TextTable::fmt(row.unit->info_content, 5),
                   TextTable::fmt(scorer.qic(*row.unit), 5),
                   TextTable::fmt(scorer.mqic(*row.unit), 5)});
  }
  bench::print_table("Table 1", table);

  // Invariant summary the paper states in §3.1/§3.2.
  double sec_ic = 0.0;
  double sec_qic = 0.0;
  double sec_mqic = 0.0;
  for (const auto& section : sc.root().children) {
    sec_ic += section.info_content;
    sec_qic += scorer.qic(section);
    sec_mqic += scorer.mqic(section);
  }
  std::printf(
      "\nAdditive-rule check over top-level sections:\n"
      "  sum IC   = %.5f (root carries title keywords; remainder %.5f)\n"
      "  sum QIC  = %.5f\n  sum MQIC = %.5f\n  lambda   = %.3f\n",
      sec_ic, sc.root().info_content - sec_ic, sec_qic, sec_mqic,
      scorer.lambda());
  return 0;
}
