// Ablation: unicast (per-client transfer with feedback) vs broadcast
// air-storage dissemination as the audience grows.
//
// K clients all want documents from a hot set of 8. Unicast serializes the
// transfers on the shared 19.2 kbps downlink, so mean latency grows linearly
// with K; the broadcast cycle serves every listener simultaneously — latency
// is flat in K (one cycle of airtime, amortized), and fault tolerance comes
// entirely from IDA redundancy since listeners have no uplink. This is the
// regime the paper's encoding (vs ARQ) is strongest in.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "broadcast/broadcast.hpp"
#include "channel/channel.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "transmit/receiver.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "xml/parser.hpp"

namespace bench = mobiweb::bench;
namespace broadcast = mobiweb::broadcast;
namespace doc = mobiweb::doc;
namespace channel = mobiweb::channel;
namespace transmit = mobiweb::transmit;
using mobiweb::Rng;
using mobiweb::TextTable;

namespace {

std::vector<doc::LinearDocument> hot_set() {
  std::vector<doc::LinearDocument> docs;
  doc::ScGenerator gen;
  for (int d = 0; d < 8; ++d) {
    std::string src = "<paper>";
    for (int p = 0; p < 8; ++p) {
      src += "<para>";
      for (int w = 0; w < 22; ++w) {
        src += "hot" + std::to_string(d) + "p" + std::to_string(p) + "w" +
               std::to_string(w) + " ";
      }
      src += "</para>";
    }
    src += "</paper>";
    docs.push_back(doc::linearize(gen.generate(mobiweb::xml::parse(src)),
                                  {.lod = doc::Lod::kParagraph,
                                   .rank = doc::RankBy::kIc}));
  }
  return docs;
}

// Unicast: K requests served back-to-back on one shared channel.
double unicast_mean_latency(const std::vector<doc::LinearDocument>& docs,
                            int clients, double alpha, std::uint64_t seed) {
  channel::WirelessChannel ch({.seed = seed},
                              std::make_unique<channel::IidErrorModel>(alpha));
  Rng rng(seed);
  mobiweb::RunningStats latency;
  const double t0 = ch.now();
  for (int k = 0; k < clients; ++k) {
    const auto& lin = docs[rng.next_below(docs.size())];
    transmit::DocumentTransmitter tx(
        lin, {.packet_size = 256, .gamma = 1.5,
              .doc_id = static_cast<std::uint16_t>(k + 1)});
    transmit::ClientReceiver rx({.doc_id = tx.doc_id(), .m = tx.m(), .n = tx.n(),
                                 .packet_size = 256,
                                 .payload_size = tx.payload_size(),
                                 .caching = true},
                                lin.segments);
    transmit::TransferSession session(tx, rx, ch);
    (void)session.run();
    // Latency as seen by client k: from the moment the *first* request was
    // queued (all K arrive together) until its own transfer completes.
    latency.add(ch.now() - t0);
  }
  return latency.mean();
}

// Broadcast: every client listens to the same cycle; each starts at a random
// offset. Latencies are independent of K by construction — measured once per
// client anyway to account for corruption randomness.
double broadcast_mean_latency(const std::vector<doc::LinearDocument>& docs,
                              int clients, double alpha, std::uint64_t seed) {
  broadcast::BroadcastServer server({.packet_size = 256, .gamma = 1.5,
                                     .interleave = true});
  std::vector<std::uint16_t> ids;
  for (const auto& d : docs) ids.push_back(server.publish(d));
  const std::size_t cycle = server.cycle_frames();
  Rng rng(seed);
  mobiweb::RunningStats latency;
  for (int k = 0; k < clients; ++k) {
    channel::WirelessChannel ch(
        {.seed = seed * 977 + static_cast<std::uint64_t>(k)},
        std::make_unique<channel::IidErrorModel>(alpha));
    const auto id = ids[rng.next_below(ids.size())];
    const auto r = broadcast::listen_for(server, id, rng.next_below(cycle), ch);
    latency.add(r.time);
  }
  return latency.mean();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — unicast transfers vs broadcast air-storage vs audience size",
      "8 hot documents, alpha on a 19.2 kbps downlink, gamma = 1.5. Unicast\n"
      "latency grows with the audience; broadcast stays flat and needs no\n"
      "uplink — redundancy alone recovers corruption for every listener.");

  const auto docs = hot_set();
  for (const double alpha : {0.1, 0.3}) {
    TextTable table({"clients K", "unicast mean latency (s)",
                     "broadcast mean latency (s)"});
    for (const int k : {1, 2, 4, 8, 16, 32}) {
      table.add_row({std::to_string(k),
                     TextTable::fmt(unicast_mean_latency(docs, k, alpha, 11), 2),
                     TextTable::fmt(broadcast_mean_latency(docs, k, alpha, 13), 2)});
    }
    bench::print_table("alpha = " + TextTable::fmt(alpha, 1), table);
  }
  return 0;
}
