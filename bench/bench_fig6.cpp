// Figure 6 (Experiment #3): benefit of multi-resolution browsing when
// discarding irrelevant documents early. All documents irrelevant (I = 1),
// Caching, delta = 3. For each LOD, "improvement" is the ratio of the
// response time at the document LOD to the response time at that LOD, as a
// function of F, at alpha = 0.1 / 0.3 / 0.5.
//
// Expected shape (paper §5.3): paragraph LOD best — document LOD about
// 30-50% slower at F = 0.1..0.3; section/subsection bring 10-30%; the
// improvement is insensitive to alpha; all curves meet 1.0 at F -> 1.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
namespace doc = mobiweb::doc;
using mobiweb::TextTable;

namespace {

double mean_response(double alpha, double f, doc::Lod lod, double skew = 3.0) {
  sim::ExperimentParams p;
  p.alpha = alpha;
  p.caching = true;
  p.irrelevant_fraction = 1.0;
  p.relevance_threshold = f;
  p.lod = lod;
  p.document.skew = skew;
  p.repetitions = bench::repetitions();
  p.documents_per_session = bench::documents_per_session();
  p.seed = 4000 + static_cast<std::uint64_t>(f * 100) +
           static_cast<std::uint64_t>(alpha * 10);
  return sim::run_browsing_experiment(p).response_time.mean;
}

void panel(double alpha) {
  TextTable table({"F", "document", "section", "subsection", "paragraph"});
  for (double f = 0.1; f <= 1.001; f += 0.1) {
    const double base = mean_response(alpha, f, doc::Lod::kDocument);
    std::vector<std::string> row = {TextTable::fmt(f, 1)};
    for (const auto lod : {doc::Lod::kDocument, doc::Lod::kSection,
                           doc::Lod::kSubsection, doc::Lod::kParagraph}) {
      const double t = mean_response(alpha, f, lod);
      row.push_back(TextTable::fmt(base / t, 3));
    }
    table.add_row(std::move(row));
  }
  std::string caption = "Figure 6, Caching (I = 1, alpha = ";
  caption += TextTable::fmt(alpha, 1) + ") — improvement over document LOD";
  bench::print_table(caption, table);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6 — multi-resolution improvement by LOD (Experiment #3)",
      "Improvement = RT(document LOD) / RT(LOD); > 1 means faster than\n"
      "conventional sequential transmission. F = 0 is skipped (no download\n"
      "at all — the paper calls that point artificial).");
  panel(0.1);
  panel(0.3);
  panel(0.5);
  return 0;
}
