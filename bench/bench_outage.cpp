// Ablation: weak-connectivity outages — resilient IDA transfer (Caching and
// NoCaching) vs selective-repeat ARQ at equal outage duty-cycle.
//
// Why it matters: the paper's weakly-connected scenario is not just random
// per-packet corruption but whole link fades. A Markov on/off outage process
// swallows frames outright while the link is down and the back channel drops
// retransmission requests, so the comparison probes end-to-end resilience:
// how often each scheme still completes, how often it degrades into a
// partial document, and how many frames the recovery costs. ARQ runs with a
// reliable back channel (a generous baseline); the resilient driver must
// push its requests through the same lossy feedback path it is measuring.
//
// Arguments: --duty=D1,D2,...   outage duty-cycles to sweep (default 0,0.2,0.4)
//            --feedback-loss=P  back-channel drop probability (default 0.3)
//            --json[=PATH]      machine-readable run ("mobiweb-bench/1" schema)
//            --trace[=PATH]     one traced session per duty value, exported as
//                               Chrome/Perfetto trace-event JSON (load the file
//                               at https://ui.perfetto.dev)
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "channel/channel.hpp"
#include "stats/describe.hpp"
#include "channel/error_model.hpp"
#include "channel/outage.hpp"
#include "doc/content.hpp"
#include "doc/linear.hpp"
#include "obs/export.hpp"
#include "transmit/arq.hpp"
#include "transmit/receiver.hpp"
#include "transmit/resilient.hpp"
#include "transmit/session.hpp"
#include "transmit/transmitter.hpp"
#include "xml/parser.hpp"

namespace bench = mobiweb::bench;
namespace channel = mobiweb::channel;
namespace doc = mobiweb::doc;
namespace transmit = mobiweb::transmit;
namespace xml = mobiweb::xml;
using mobiweb::TextTable;

namespace {

constexpr double kAlpha = 0.1;        // per-packet corruption while link is up
constexpr double kMeanOutageS = 1.0;  // mean length of one fade
constexpr double kGamma = 1.5;
constexpr std::size_t kPacketSize = 64;

doc::LinearDocument make_document() {
  std::string src = "<paper>";
  for (int p = 0; p < 12; ++p) {
    src += "<para>";
    for (int w = 0; w < 40; ++w) {
      src += "word" + std::to_string(p) + "x" + std::to_string(w) + " ";
    }
    src += "</para>";
  }
  src += "</paper>";
  doc::ScGenerator gen;
  const auto sc = gen.generate(xml::parse(src));
  return doc::linearize(sc, {.lod = doc::Lod::kParagraph,
                             .rank = doc::RankBy::kIc});
}

channel::WirelessChannel make_channel(double duty, double feedback_loss,
                                      std::uint64_t seed) {
  channel::ChannelConfig cc;
  cc.seed = seed;
  cc.feedback_loss_rate = feedback_loss;
  channel::WirelessChannel ch(
      cc, std::make_unique<channel::IidErrorModel>(kAlpha));
  if (duty > 0.0) {
    ch.set_outage(std::make_unique<channel::MarkovOutageModel>(
        channel::MarkovOutageModel::with_duty_cycle(duty, kMeanOutageS)));
  }
  return ch;
}

struct Cell {
  double completed = 0.0;   // fraction that fully reconstructed
  double degraded = 0.0;    // fraction that ended with a partial document
  double gave_up = 0.0;     // fraction that ended empty-handed
  double mean_frames = 0.0; // forward frames per document
  double mean_time = 0.0;   // response time per document (s)
  double mean_content = 0.0;
  std::vector<double> times;            // per-document response times
  mobiweb::stats::TailSummary tails;    // filled by normalize()
};

void record(Cell& cell, const transmit::SessionResult& r, bool has_partial) {
  switch (r.status) {
    case transmit::SessionStatus::kCompleted: cell.completed += 1.0; break;
    case transmit::SessionStatus::kAbortedIrrelevant: break;  // not used here
    case transmit::SessionStatus::kDegraded:
      (has_partial ? cell.degraded : cell.gave_up) += 1.0;
      break;
    case transmit::SessionStatus::kGaveUp:
      (has_partial ? cell.degraded : cell.gave_up) += 1.0;
      break;
  }
  cell.mean_frames += static_cast<double>(r.frames_sent);
  cell.mean_time += r.response_time;
  cell.mean_content += r.content_received;
  cell.times.push_back(r.response_time);
}

void normalize(Cell& cell, int docs) {
  const double d = static_cast<double>(docs);
  cell.completed /= d;
  cell.degraded /= d;
  cell.gave_up /= d;
  cell.mean_frames /= d;
  cell.mean_time /= d;
  cell.mean_content /= d;
  cell.tails = mobiweb::stats::summarize_tails(cell.times);
}

Cell run_resilient(const doc::LinearDocument& linear, bool caching,
                   double duty, double feedback_loss, int docs) {
  Cell cell;
  for (int d = 0; d < docs; ++d) {
    transmit::TransmitterConfig tc;
    tc.packet_size = kPacketSize;
    tc.gamma = kGamma;
    tc.doc_id = static_cast<std::uint16_t>(1 + (d % 60000));
    transmit::DocumentTransmitter tx(linear, tc);
    transmit::ReceiverConfig rc;
    rc.doc_id = tc.doc_id;
    rc.m = tx.m();
    rc.n = tx.n();
    rc.packet_size = kPacketSize;
    rc.payload_size = tx.payload_size();
    rc.caching = caching;
    transmit::ClientReceiver rx(rc, tx.document().segments);
    auto ch = make_channel(duty, feedback_loss,
                           0x007a6eull + static_cast<std::uint64_t>(d));
    transmit::ResilientConfig cfg;
    cfg.max_rounds = 50;
    cfg.retry.retry_budget = 12;
    cfg.retry.initial_timeout_s = 0.25;
    transmit::ResilientSession session(tx, rx, ch, cfg);
    const transmit::ResilientResult r = session.run();
    record(cell, r.session, !r.partial.empty());
  }
  normalize(cell, docs);
  return cell;
}

Cell run_arq(const doc::LinearDocument& linear, double duty,
             double feedback_loss, int docs) {
  Cell cell;
  for (int d = 0; d < docs; ++d) {
    transmit::TransmitterConfig tc;
    tc.packet_size = kPacketSize;
    tc.gamma = 1.0;  // no redundancy: pure selective repeat
    tc.doc_id = static_cast<std::uint16_t>(1 + (d % 60000));
    transmit::DocumentTransmitter tx(linear, tc);
    transmit::ReceiverConfig rc;
    rc.doc_id = tc.doc_id;
    rc.m = tx.m();
    rc.n = tx.n();
    rc.packet_size = kPacketSize;
    rc.payload_size = tx.payload_size();
    rc.caching = true;  // ARQ is inherently caching
    transmit::ClientReceiver rx(rc, tx.document().segments);
    auto ch = make_channel(duty, feedback_loss,
                           0xa59ull + static_cast<std::uint64_t>(d));
    transmit::ArqConfig cfg;
    cfg.max_rounds = 50;
    transmit::ArqSession session(tx, rx, ch, cfg);
    const transmit::SessionResult r = session.run();
    record(cell, r, false);
  }
  normalize(cell, docs);
  return cell;
}

// One fully-traced resilient transfer (caching variant) at the given duty
// cycle, for the --trace Perfetto export. The returned trace owns the full
// per-frame event log.
std::unique_ptr<mobiweb::obs::SessionTrace> run_one_traced(
    const doc::LinearDocument& linear, double duty, double feedback_loss) {
  auto trace = std::make_unique<mobiweb::obs::SessionTrace>(
      "resilient+caching duty=" + TextTable::fmt(duty, 2));
  trace->capture_events(true);
  transmit::TransmitterConfig tc;
  tc.packet_size = kPacketSize;
  tc.gamma = kGamma;
  tc.doc_id = 1;
  transmit::DocumentTransmitter tx(linear, tc);
  transmit::ReceiverConfig rc;
  rc.doc_id = tc.doc_id;
  rc.m = tx.m();
  rc.n = tx.n();
  rc.packet_size = kPacketSize;
  rc.payload_size = tx.payload_size();
  rc.caching = true;
  transmit::ClientReceiver rx(rc, tx.document().segments);
  auto ch = make_channel(duty, feedback_loss, 0x007a6eull);
  transmit::ResilientConfig cfg;
  cfg.max_rounds = 50;
  cfg.retry.retry_budget = 12;
  cfg.retry.initial_timeout_s = 0.25;
  cfg.trace = trace.get();
  transmit::ResilientSession session(tx, rx, ch, cfg);
  (void)session.run();
  return trace;
}

int run_trace_mode(const doc::LinearDocument& linear,
                   const std::vector<double>& duties, double feedback_loss,
                   const std::string& path) {
  std::vector<std::unique_ptr<mobiweb::obs::SessionTrace>> traces;
  traces.reserve(duties.size());
  for (const double duty : duties) {
    traces.push_back(run_one_traced(linear, duty, feedback_loss));
  }
  std::vector<const mobiweb::obs::SessionTrace*> ptrs;
  ptrs.reserve(traces.size());
  for (const auto& t : traces) ptrs.push_back(t.get());
  return bench::emit_json(mobiweb::obs::timeline_json(ptrs), path);
}

std::string cell_json(const char* variant, double duty, const Cell& c) {
  std::string json = "    {\"variant\": \"";
  json += variant;
  json += "\", \"duty\": " + TextTable::fmt(duty, 2);
  json += ", \"completed\": " + TextTable::fmt(c.completed, 4);
  json += ", \"degraded\": " + TextTable::fmt(c.degraded, 4);
  json += ", \"gave_up\": " + TextTable::fmt(c.gave_up, 4);
  json += ", \"mean_frames\": " + TextTable::fmt(c.mean_frames, 2);
  json += ", \"mean_time_s\": " + TextTable::fmt(c.mean_time, 4);
  json += ", \"p99_time_s\": " + TextTable::fmt(c.tails.p99, 4);
  json += ", \"ci95_time_s\": " + TextTable::fmt(c.tails.ci95, 4);
  json += ", \"mean_content\": " + TextTable::fmt(c.mean_content, 4) + "}";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<double> duties =
      bench::arg_double_list(argc, argv, "duty", {0.0, 0.2, 0.4});
  const double feedback_loss =
      bench::arg_double(argc, argv, "feedback-loss", 0.3);
  const int docs = bench::fast_mode() ? 20 : 100;
  const doc::LinearDocument linear = make_document();

  if (const auto trace_path = bench::trace_request(argc, argv)) {
    return run_trace_mode(linear, duties, feedback_loss, *trace_path);
  }

  if (const auto json_path = bench::json_request(argc, argv)) {
    bench::JsonReport report("outage");
    report.meta("alpha", kAlpha);
    report.meta("feedback_loss", feedback_loss);
    report.meta("mean_outage_s", kMeanOutageS);
    report.meta("documents", static_cast<double>(docs));
    std::string cells = "[\n";
    bool first = true;
    for (const double duty : duties) {
      const Cell caching = run_resilient(linear, true, duty, feedback_loss, docs);
      const Cell nocache = run_resilient(linear, false, duty, feedback_loss, docs);
      const Cell arq = run_arq(linear, duty, feedback_loss, docs);
      if (!first) cells += ",\n";
      cells += cell_json("resilient+caching", duty, caching) + ",\n";
      cells += cell_json("resilient+nocaching", duty, nocache) + ",\n";
      cells += cell_json("arq", duty, arq);
      first = false;
      const std::string key = "caching.duty_" + TextTable::fmt(duty, 2);
      report.metric(key + ".completed", caching.completed);
      report.metric(key + ".mean_content", caching.mean_content);
      report.metric(key + ".mean_time_s", caching.mean_time);
      report.metric(key + ".mean_frames", caching.mean_frames);
      // Tail keys: _p50/_p95/_p99 strip back to *_s (lower-is-better, gated);
      // _ci95 is informational context for the mean.
      report.metric(key + ".time_s_p50", caching.tails.p50);
      report.metric(key + ".time_s_p95", caching.tails.p95);
      report.metric(key + ".time_s_p99", caching.tails.p99);
      report.metric(key + ".time_s_ci95", caching.tails.ci95);
    }
    cells += "\n  ]";
    report.raw("cells", cells);
    return bench::emit_json(report.str(), *json_path);
  }

  bench::print_header(
      "Ablation — link outages: resilient IDA (caching / no caching) vs ARQ",
      "Markov on/off fades at equal duty-cycle swallow frames; the back\n"
      "channel drops retransmission requests (ARQ keeps reliable feedback).\n"
      "Expected: caching + redundancy completes most transfers and degrades\n"
      "gracefully; NoCaching wastes every interrupted round; ARQ needs many\n"
      "more recovery rounds once fades lengthen.");

  TextTable table({"variant", "duty", "completed", "degraded", "gave up",
                   "mean frames", "mean time (s)", "p99 time (s)",
                   "mean content"});
  for (const double duty : duties) {
    const Cell caching = run_resilient(linear, true, duty, feedback_loss, docs);
    const Cell nocache = run_resilient(linear, false, duty, feedback_loss, docs);
    const Cell arq = run_arq(linear, duty, feedback_loss, docs);
    const auto row = [&table, duty](const char* name, const Cell& c) {
      table.add_row({name, TextTable::fmt(duty, 2), TextTable::fmt(c.completed, 3),
                     TextTable::fmt(c.degraded, 3), TextTable::fmt(c.gave_up, 3),
                     TextTable::fmt(c.mean_frames, 1), TextTable::fmt(c.mean_time, 3),
                     TextTable::fmt(c.tails.p99, 3),
                     TextTable::fmt(c.mean_content, 3)});
    };
    row("resilient+caching", caching);
    row("resilient+nocaching", nocache);
    row("arq", arq);
  }
  bench::print_table(
      "feedback loss = " + TextTable::fmt(feedback_loss, 2), table);
  return 0;
}
