// Figure 5 (Experiment #2): the effect of early termination of irrelevant
// documents. First row: vary the irrelevant fraction I with F = 0.5. Second
// row: vary the required content F with I = 0.5. Document LOD, gamma = 1.5.
//
// Expected shape (paper §5.2): response time decreases linearly in I (it is a
// weighted average of relevant and irrelevant documents); versus F the rise
// is slow at first (a few clear-text packets carry F), then jumps (the client
// needs reconstruction, i.e. M intact packets), then flattens toward the
// full-download time.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
using mobiweb::TextTable;

namespace {

sim::ExperimentParams base(double alpha, bool caching) {
  sim::ExperimentParams p;
  p.alpha = alpha;
  p.caching = caching;
  p.lod = mobiweb::doc::Lod::kDocument;
  p.repetitions = bench::repetitions();
  p.documents_per_session = bench::documents_per_session();
  return p;
}

void panel_vary_i(const char* name, bool caching) {
  TextTable table({"I", "alpha=0.1", "alpha=0.2", "alpha=0.3", "alpha=0.4",
                   "alpha=0.5"});
  for (double i = 0.0; i <= 1.001; i += 0.1) {
    std::vector<std::string> row = {TextTable::fmt(i, 1)};
    for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      auto p = base(alpha, caching);
      p.irrelevant_fraction = i;
      p.relevance_threshold = 0.5;
      p.seed = 2000 + static_cast<std::uint64_t>(i * 100);
      const auto r = sim::run_browsing_experiment(p);
      std::string cell = TextTable::fmt(r.response_time.mean, 2);
      if (r.gave_up_fraction > 0.0) cell += "*";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(name, table);
}

void panel_vary_f(const char* name, bool caching) {
  TextTable table({"F", "alpha=0.1", "alpha=0.2", "alpha=0.3", "alpha=0.4",
                   "alpha=0.5"});
  for (double f = 0.0; f <= 1.001; f += 0.1) {
    std::vector<std::string> row = {TextTable::fmt(f, 1)};
    for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      auto p = base(alpha, caching);
      p.irrelevant_fraction = 0.5;
      p.relevance_threshold = f;
      p.seed = 3000 + static_cast<std::uint64_t>(f * 100);
      const auto r = sim::run_browsing_experiment(p);
      std::string cell = TextTable::fmt(r.response_time.mean, 2);
      if (r.gave_up_fraction > 0.0) cell += "*";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(name, table);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5 — impact of varying I and F (Experiment #2)",
      "Mean response time (s) per document at document LOD, gamma = 1.5.");
  panel_vary_i("Figure 5a: NoCaching, vary I (F = 0.5)", false);
  panel_vary_i("Figure 5b: Caching,   vary I (F = 0.5)", true);
  panel_vary_f("Figure 5c: NoCaching, vary F (I = 0.5)", false);
  panel_vary_f("Figure 5d: Caching,   vary F (I = 0.5)", true);
  return 0;
}
