// Ablation: iid corruption (the paper's model) vs Gilbert-Elliott burst
// errors at the same average corruption rate.
//
// Why it matters: the negative-binomial analysis of §4.1 assumes independent
// corruption. Real wireless fades corrupt packets in bursts. With the same
// average alpha, bursts concentrate damage in some rounds and spare others —
// this probes how robust the caching + redundancy design is when the
// independence assumption breaks.
#include "bench_common.hpp"
#include "channel/error_model.hpp"
#include "sim/transfer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
namespace channel = mobiweb::channel;
using mobiweb::Rng;
using mobiweb::TextTable;

namespace {

struct Outcome {
  double mean_time = 0.0;
  double stall_fraction = 0.0;
  double gave_up = 0.0;
};

Outcome run(channel::ErrorModel& model, bool caching, int docs) {
  const int m = 40;
  Rng rng(8800);
  mobiweb::RunningStats stats;
  long stalls = 0;
  long gave_up = 0;
  const std::vector<double> content(m, 1.0 / m);
  for (int d = 0; d < docs; ++d) {
    sim::TransferConfig cfg;
    cfg.m = m;
    cfg.n = 60;  // gamma = 1.5
    cfg.caching = caching;
    const auto r = sim::simulate_transfer(
        content, cfg, [&model, &rng] { return model.next_corrupted(rng); });
    stats.add(r.time);
    stalls += (r.rounds > 1);
    gave_up += r.gave_up;
  }
  Outcome out;
  out.mean_time = stats.mean();
  out.stall_fraction = static_cast<double>(stalls) / docs;
  out.gave_up = static_cast<double>(gave_up) / docs;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — iid vs Gilbert-Elliott burst errors at equal average alpha",
      "gamma = 1.5, M = 40, relevant documents. Bursts make single rounds\n"
      "either mostly-clean or devastated; caching should absorb most of the\n"
      "damage, while NoCaching suffers.");

  const int docs = bench::fast_mode() ? 2000 : 10000;

  for (const double alpha : {0.1, 0.3}) {
    TextTable table({"channel", "caching", "mean time (s)", "stall fraction",
                     "gave-up fraction"});
    for (const bool caching : {true, false}) {
      channel::IidErrorModel iid(alpha);
      const auto o_iid = run(iid, caching, docs);
      table.add_row({"iid", caching ? "yes" : "no", TextTable::fmt(o_iid.mean_time, 3),
                     TextTable::fmt(o_iid.stall_fraction, 3),
                     TextTable::fmt(o_iid.gave_up, 4)});
      for (const double burst : {4.0, 16.0}) {
        auto ge = channel::GilbertElliottModel::with_average_rate(alpha, burst);
        const auto o = run(ge, caching, docs);
        table.add_row({"GE burst=" + TextTable::fmt(burst, 0),
                       caching ? "yes" : "no", TextTable::fmt(o.mean_time, 3),
                       TextTable::fmt(o.stall_fraction, 3),
                       TextTable::fmt(o.gave_up, 4)});
      }
    }
    bench::print_table("alpha = " + TextTable::fmt(alpha, 1), table);
  }
  return 0;
}
