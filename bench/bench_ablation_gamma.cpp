// Ablation: fixed redundancy ratio vs the EWMA-adaptive controller the paper
// sketches in §4.2 ("the value of gamma could be defined as an adaptive
// function of the observed summarized value of alpha, using perhaps a kind of
// EWMA measure").
//
// Scenario: a browsing session in which the channel quality drifts (the
// client walks from good coverage into a fade and back). A fixed gamma is
// either wasteful when the channel is clean or inadequate when it is bad; the
// adaptive controller should track the drift and come close to the
// per-phase-optimal gamma everywhere.
#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/negbinom.hpp"
#include "bench_common.hpp"
#include "sim/transfer.hpp"
#include "transmit/adaptive.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bench = mobiweb::bench;
namespace sim = mobiweb::sim;
using mobiweb::Rng;
using mobiweb::TextTable;

namespace {

// Channel drift profile over a 200-document session: alpha per document.
std::vector<double> drift_profile(int docs) {
  std::vector<double> alpha(static_cast<std::size_t>(docs));
  for (int d = 0; d < docs; ++d) {
    const double phase = static_cast<double>(d) / static_cast<double>(docs);
    if (phase < 0.3) {
      alpha[static_cast<std::size_t>(d)] = 0.05;  // good coverage
    } else if (phase < 0.6) {
      alpha[static_cast<std::size_t>(d)] = 0.4;   // fade
    } else {
      alpha[static_cast<std::size_t>(d)] = 0.15;  // recovering
    }
  }
  return alpha;
}

struct Outcome {
  double mean_time = 0.0;
  double mean_packets = 0.0;
  double stall_fraction = 0.0;
};

// Runs one session policy. gamma_fn(doc index, m) -> gamma for that document;
// observe_fn(corruption rate) feeds the controller afterwards.
template <typename GammaFn, typename ObserveFn>
Outcome run_policy(const GammaFn& gamma_fn, const ObserveFn& observe_fn,
                   int repetitions, int docs) {
  const int m = 40;
  mobiweb::RunningStats time_stats;
  double packets = 0.0;
  long stalls = 0;
  long total_docs = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    Rng rng(9000 + static_cast<std::uint64_t>(rep));
    const auto alphas = drift_profile(docs);
    for (int d = 0; d < docs; ++d) {
      sim::TransferConfig cfg;
      cfg.m = m;
      const double gamma = gamma_fn(d, m);
      cfg.n = static_cast<int>(std::ceil(gamma * m));
      if (cfg.n < cfg.m) cfg.n = cfg.m;
      cfg.alpha = alphas[static_cast<std::size_t>(d)];
      cfg.caching = true;
      const std::vector<double> content(m, 1.0 / m);
      const auto r = sim::simulate_transfer(content, cfg, rng);
      time_stats.add(r.time);
      packets += static_cast<double>(r.packets);
      stalls += (r.rounds > 1);
      ++total_docs;
      // The client reports the corruption rate it saw (corrupted = sent -
      // useful intact observations; approximate with the configured alpha
      // plus sampling noise from the realized pattern).
      const double observed =
          1.0 - static_cast<double>(m) /
                    std::max<double>(static_cast<double>(r.packets), m);
      observe_fn(r.completed ? observed : cfg.alpha);
    }
  }
  Outcome out;
  out.mean_time = time_stats.mean();
  out.mean_packets = packets / static_cast<double>(total_docs);
  out.stall_fraction = static_cast<double>(stalls) / static_cast<double>(total_docs);
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — fixed gamma vs EWMA-adaptive gamma under channel drift",
      "Session: alpha = 0.05 (30% of docs) -> 0.40 (30%) -> 0.15 (40%).\n"
      "Metrics per document; lower is better. The adaptive controller should\n"
      "approach the oracle (per-phase optimal gamma).");

  const int reps = bench::fast_mode() ? 5 : 30;
  const int docs = 200;

  TextTable table({"policy", "mean time (s)", "mean packets", "stall fraction"});

  for (const double g : {1.1, 1.5, 2.0, 2.5}) {
    const auto o = run_policy([g](int, int) { return g; }, [](double) {}, reps, docs);
    table.add_row({"fixed gamma=" + TextTable::fmt(g, 1),
                   TextTable::fmt(o.mean_time, 3), TextTable::fmt(o.mean_packets, 1),
                   TextTable::fmt(o.stall_fraction, 3)});
  }

  {
    mobiweb::transmit::AdaptiveGamma controller(
        {.initial_gamma = 1.5, .target_success = 0.95, .ewma_alpha = 0.25});
    const auto o = run_policy(
        [&controller](int, int m) { return controller.gamma(m); },
        [&controller](double rate) { controller.observe(rate); }, reps, docs);
    table.add_row({"adaptive (EWMA 0.25, S=95%)", TextTable::fmt(o.mean_time, 3),
                   TextTable::fmt(o.mean_packets, 1),
                   TextTable::fmt(o.stall_fraction, 3)});
  }

  {
    // Oracle: knows the true alpha of each phase.
    const auto profile = drift_profile(docs);
    const auto o = run_policy(
        [&profile](int d, int m) {
          return mobiweb::analysis::redundancy_ratio(
              m, profile[static_cast<std::size_t>(d)], 0.95);
        },
        [](double) {}, reps, docs);
    table.add_row({"oracle (true alpha, S=95%)", TextTable::fmt(o.mean_time, 3),
                   TextTable::fmt(o.mean_packets, 1),
                   TextTable::fmt(o.stall_fraction, 3)});
  }

  bench::print_table("Adaptive-gamma ablation", table);
  return 0;
}
